"""Broker API v2: sessions, jobs, batching and the cross-request cache.

The paper's broker (Figure 2) is a *service*: many customers submit
requests against the same observed telemetry and rate cards.  PR 1 gave
every strategy a shared per-request :class:`EvaluationEngine`; this
module lifts that sharing across requests:

- :class:`EngineCache` keys engines by (provider, base-system signature,
  contract, rate-card fingerprint, catalog variant) with LRU eviction,
  so repeated and similar requests reuse the per-(cluster, technology)
  term caches instead of recomputing them;
- :class:`BrokerSession` is the v2 facade: synchronous ``recommend``,
  batched ``recommend_many`` over a bounded worker pool, an async
  ``submit`` / ``poll`` / ``result`` job lifecycle, and a ``stream``
  generator that emits :class:`~repro.broker.envelope.ProgressEvent`s
  while distilling exhaustive sweeps without materializing option
  tables.

``BrokerService.recommend`` remains as a deprecation-shimmed wrapper
over a one-request session.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

from repro.broker.envelope import (
    ProgressEvent,
    RecommendEnvelope,
    ReportEnvelope,
    contract_to_dict,
)
from repro.broker.ratecard import registry_for_provider
from repro.broker.request import RecommendationRequest
from repro.cloud.pricing import RateCard
from repro.cost.rates import LaborRate
from repro.errors import (
    BrokerError,
    InsufficientTelemetryError,
    UnknownNameError,
    ValidationError,
    unknown_name_message,
)
from repro.optimizer.engine import (
    EngineStats,
    EvaluationEngine,
    resolve_backend,
)
from repro.obs import clock
from repro.obs.trace import SpanContext, Tracer, maybe_span, parse_traceparent
from repro.optimizer.megabatch import MegabatchConfig, MegabatchStacker
from repro.optimizer.result import OptimizationResult, ResultAccumulator
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.topology.serialization import system_to_json
from repro.topology.system import SystemTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.broker.service import (
        BrokerService,
        ProviderRecommendation,
        RecommendationReport,
    )

#: Default number of engines an :class:`EngineCache` retains.
DEFAULT_CACHE_CAPACITY = 16

#: Default worker-pool width for batched/async submission.
DEFAULT_MAX_WORKERS = 4

#: Default cap on finished (done/failed) jobs a session's table retains.
DEFAULT_MAX_FINISHED_JOBS = 1024

#: Job lifecycle states.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _trace_context(envelope: RecommendEnvelope) -> SpanContext | None:
    """The envelope's traceparent as a context; invalid values discarded.

    Per the W3C trace-context spec a malformed incoming header is
    dropped (the server starts its own trace) rather than rejected —
    observability metadata must never fail a request.
    """
    if envelope.trace is None:
        return None
    try:
        return parse_traceparent(envelope.trace)
    except ValidationError:
        return None


def system_signature(system: SystemTopology) -> str:
    """Content hash of a topology's canonical JSON serialization.

    Two materialized base systems share a signature exactly when every
    cluster, node estimate and price agrees — so fresher telemetry (new
    ``P̂/f̂`` estimates) changes the signature and misses the cache
    instead of serving stale engines.
    """
    return _digest(system_to_json(system, indent=0))


def contract_fingerprint(contract: Contract) -> str:
    """Content hash of a contract's wire serialization.

    Custom :class:`~repro.sla.penalty.PenaltyClause` subclasses have no
    wire form; they fall back to the clause's ``repr`` (dataclass reprs
    carry every field), so extending the penalty ABC keeps working —
    such contracts just cannot travel in envelopes.
    """
    try:
        return _digest(json.dumps(contract_to_dict(contract), sort_keys=True))
    except ValidationError:
        return _digest(repr(contract))


def rate_card_fingerprint(card: RateCard) -> str:
    """Content hash of everything a rate card prices.

    Covers SKU catalogs (reprs carry every field), HA add-on prices,
    labor-hour norms and the labor rate — the full set of inputs the
    technology registry and TCO model read from the card.
    """
    payload = (
        tuple(repr(sku) for sku in card.instance_types),
        tuple(repr(sku) for sku in card.volume_types),
        tuple(repr(sku) for sku in card.gateway_types),
        tuple(sorted(card.ha_addons.items())),
        tuple(sorted(card.ha_labor_hours.items())),
        card.labor_rate_per_hour,
    )
    return _digest(repr(payload))


@dataclass(frozen=True)
class EngineKey:
    """Identity of one cached engine.

    The first four fields are the ISSUE-mandated key components;
    ``variant`` folds in the remaining inputs that change what an engine
    *computes* (catalog width, failover estimates, evaluation mode).
    The evaluation backend is deliberately **not** part of the key: it
    only changes where the float math runs, never its results, so a
    warm engine is rebound in place
    (:meth:`~repro.optimizer.engine.EvaluationEngine.set_backend`)
    instead of being rebuilt — a backend switch costs zero new
    cluster-term computations.
    """

    provider: str
    base_system: str
    contract: str
    rate_card: str
    variant: tuple

    @classmethod
    def build(
        cls,
        provider_name: str,
        base_system: SystemTopology,
        contract: Contract,
        rate_card: RateCard,
        *,
        failover_minutes: Mapping[str, float],
        extended_catalog: bool,
        engine_mode: str,
    ) -> "EngineKey":
        """Fingerprint every input that shapes an engine's caches."""
        return cls(
            provider=provider_name,
            base_system=system_signature(base_system),
            contract=contract_fingerprint(contract),
            rate_card=rate_card_fingerprint(rate_card),
            variant=(
                tuple(sorted(failover_minutes.items())),
                extended_catalog,
                engine_mode,
            ),
        )


def _request_stats(
    before: EngineStats, after: EngineStats, first_service: bool
) -> EngineStats:
    """Per-request engine work: the delta across one request's serving.

    Cached engines accumulate counters across every request they serve;
    reports should audit only their own work (v1 semantics, where each
    request built a fresh engine).  The construction-time n*k cluster
    precompute is attributed to the first request served by the engine.
    If two requests interleave on one shared engine (only possible via
    partially-consumed streams), the delta covers the interleaved work.
    """
    return EngineStats(
        candidate_evaluations=(
            after.candidate_evaluations - before.candidate_evaluations
        ),
        cache_hits=after.cache_hits - before.cache_hits,
        incremental_combines=(
            after.incremental_combines - before.incremental_combines
        ),
        topology_evaluations=(
            after.topology_evaluations - before.topology_evaluations
        ),
        cluster_term_computations=(
            after.cluster_term_computations if first_service else 0
        ),
    )


@dataclass
class EngineCacheStats:
    """Hit/miss/eviction accounting for one :class:`EngineCache`.

    ``evicted_engines_closed`` counts evicted engines whose worker-pool
    lease was actually released (eviction alone only drops the map
    entry); ``deferred_engine_closes`` counts evictions whose close had
    to wait for an in-flight request still holding the entry — the
    holder completes the close through :meth:`EngineCache.finish`.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_engines_closed: int = 0
    deferred_engine_closes: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered by an existing engine."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def to_dict(self) -> dict[str, int]:
        """JSON-safe counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_engines_closed": self.evicted_engines_closed,
            "deferred_engine_closes": self.deferred_engine_closes,
        }

    def describe(self) -> str:
        """One-line summary for CLI/benchmark output."""
        return (
            f"engine cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100:.0f}% hit rate, "
            f"{self.evictions} evictions)"
        )


@dataclass
class _CacheEntry:
    """A cached engine plus the lock serializing its (sequential) use.

    ``engine`` is ``None`` only while the winning thread is still
    inside the factory (build happens under ``lock``, not the cache's
    global lock).  ``unserved`` is True until the first request served
    by this engine completes — per-request stat deltas attribute the
    construction-time cluster-term precompute to that request.

    ``evicted`` flips (under the cache's global lock) when LRU eviction
    drops the entry from the map; ``closed`` records that the engine's
    worker-pool lease was released afterwards.  An evicted-but-not-yet-
    closed entry is one an in-flight request still holds — that holder
    finishes the close via :meth:`EngineCache.finish`.

    ``shared`` counts megabatching requests currently evaluating on the
    engine *without* holding ``lock`` for the duration (they hold it
    only to join/leave); exclusive users wait on ``cond`` (which wraps
    ``lock``) until the count drains before rebinding the backend.
    """

    key: EngineKey
    engine: EvaluationEngine | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    unserved: bool = True
    evicted: bool = False
    closed: bool = False
    shared: int = 0

    def __post_init__(self) -> None:
        self.cond = threading.Condition(self.lock)


class EngineCache:
    """LRU cache of :class:`EvaluationEngine` instances across requests.

    One cache typically lives as long as a :class:`BrokerSession`; it
    may also be shared between sessions (or services) to pool engines
    across front-ends.  All operations are thread-safe.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise BrokerError(f"cache capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.stats = EngineCacheStats()
        self._entries: OrderedDict[EngineKey, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()

    def entry(
        self, key: EngineKey, factory: Callable[[], EvaluationEngine]
    ) -> _CacheEntry:
        """Return the entry for ``key``, building the engine on a miss.

        The global lock covers only map bookkeeping; the factory (the
        n*k per-cluster precompute) runs under the entry's own lock, so
        distinct keys build concurrently while racing requests for the
        *same* key still share one build.

        LRU eviction closes the dropped engines *outside* the global
        lock (pool shutdown can block): an engine's worker-pool lease
        would otherwise leak until interpreter exit.  If an in-flight
        request still holds an evicted entry, the close is deferred to
        that holder (:meth:`finish`).
        """
        evicted: list[_CacheEntry] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
            else:
                self.stats.misses += 1
                entry = _CacheEntry(key=key)
                self._entries[key] = entry
                while len(self._entries) > self.capacity:
                    _, dropped = self._entries.popitem(last=False)
                    dropped.evicted = True
                    evicted.append(dropped)
                    self.stats.evictions += 1
        for dropped in evicted:
            self._close_evicted(dropped, count_deferred=True)
        if entry.engine is None:
            with entry.lock:
                if entry.engine is None:
                    try:
                        entry.engine = factory()
                    except BaseException:
                        # Don't poison the cache with a never-built entry.
                        with self._lock:
                            if self._entries.get(key) is entry:
                                del self._entries[key]
                        raise
        return entry

    def _close_evicted(
        self, entry: _CacheEntry, *, count_deferred: bool = False
    ) -> None:
        """Release an evicted entry's engine without blocking.

        Runs outside the global lock.  The entry's own lock is taken
        non-blockingly: if an in-flight request holds it, the close is
        deferred — the holder calls :meth:`finish` once done.  The
        engine is closed even when ``entry.closed`` is already set: a
        holder that resolved the entry before eviction may have revived
        the closed engine (a closed engine lazily re-acquires its pool),
        so every finish re-closes; ``EvaluationEngine.close`` is
        idempotent and only the first close is counted.
        """
        if not entry.lock.acquire(blocking=False):
            if count_deferred and not entry.closed:
                with self._lock:
                    self.stats.deferred_engine_closes += 1
            return
        try:
            if entry.engine is not None:
                entry.engine.close()
            first_close, entry.closed = not entry.closed, True
        finally:
            entry.lock.release()
        if first_close:
            with self._lock:
                self.stats.evicted_engines_closed += 1

    def finish(self, entry: _CacheEntry) -> None:
        """Complete (or repeat) an eviction close after using an entry.

        Sessions call this (outside the entry's lock) whenever they are
        done serving a request from a cached engine; it is a no-op
        unless the entry was evicted.  Re-closing matters: an in-flight
        holder revives a closed engine's pool lease just by evaluating
        on it, so the *last* user out must always shut the lease down.
        """
        if entry.evicted:
            self._close_evicted(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: EngineKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> tuple[EngineKey, ...]:
        """Cached keys in LRU order (least recently used first)."""
        with self._lock:
            return tuple(self._entries)

    def engines(self) -> tuple[EvaluationEngine, ...]:
        """The live (fully built) engines, LRU order — for stats."""
        with self._lock:
            return tuple(
                entry.engine
                for entry in self._entries.values()
                if entry.engine is not None
            )

    def cluster_term_computations(self) -> int:
        """Total per-(cluster, technology) precomputes across engines.

        The acceptance metric for warm sessions: serving a repeated
        request must leave this number unchanged.
        """
        return sum(
            engine.stats.cluster_term_computations for engine in self.engines()
        )

    def clear(self) -> None:
        """Drop every cached engine (stats are retained).

        Dropped engines are closed like LRU evictions — non-blockingly,
        deferring to in-flight holders — so clearing a cache of
        process-backed engines does not leak their pool leases.
        """
        with self._lock:
            dropped = tuple(self._entries.values())
            self._entries.clear()
            for entry in dropped:
                entry.evicted = True
        for entry in dropped:
            self._close_evicted(entry, count_deferred=True)


@dataclass
class BrokerJob:
    """One submitted request's lifecycle record.

    ``retrieved`` flips when :meth:`BrokerSession.result` hands the
    outcome to a caller; only retrieved jobs are eligible for the
    count-based retention eviction, so an unread report is never yanked
    out from under a slow collector.  ``finished_at`` (monotonic
    seconds) is stamped when the job reaches a terminal state and
    drives the session's age-based TTL eviction, which *does* reclaim
    never-retrieved jobs — the fire-and-forget leak.

    ``trace``/``submitted_at`` carry the submitter's span context into
    the worker thread (contextvars do not cross executor threads) so
    ``_run_job`` can re-activate it and attribute the submit→run gap to
    a ``queue_wait`` span.  Both stay ``None`` when tracing is off.
    """

    job_id: str
    envelope: RecommendEnvelope
    status: str = JOB_PENDING
    report: "RecommendationReport | None" = None
    error: Exception | None = None
    retrieved: bool = False
    finished_at: float | None = None
    trace: SpanContext | None = None
    submitted_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def request(self) -> RecommendationRequest:
        """The wrapped recommendation request."""
        return self.envelope.request


class BrokerSession:
    """The v2 facade: sessioned, batched, streaming recommendations.

    A session wraps a :class:`~repro.broker.service.BrokerService`
    (which owns providers and telemetry) and adds the request/response
    machinery: the cross-request :class:`EngineCache`, a bounded worker
    pool for batched submission, and the job table behind
    ``submit`` / ``poll`` / ``result``.

    Sessions are context managers; ``close()`` shuts the worker pool
    down (jobs already submitted still complete).

    The job table retains at most ``max_finished_jobs`` finished jobs
    whose result has been *retrieved*, evicting oldest-first on
    submission, so a long-running server session does not grow without
    bound.  Pending, running and unretrieved-finished jobs are never
    evicted by that count-based policy (batches of any size stay
    collectable) — but fire-and-forget submitters that never call
    ``result()`` would still grow the table forever, so
    ``finished_job_ttl`` adds an age-based policy: any finished job
    (retrieved or not) older than the TTL is reclaimed on the next
    submission.  Polling an evicted job raises the same unknown-job
    error as a never-submitted id; both eviction paths are counted in
    :meth:`metrics`.

    ``backend`` sets the session's default evaluation backend for
    requests that do not pin one themselves (``request.backend``
    always wins).

    ``megabatch`` opts the session into cross-request megabatching:
    concurrent requests that resolve to the *same* cached engine and
    the ``vector`` backend evaluate their candidate chunks in one
    stacked numpy pass (see :mod:`repro.optimizer.megabatch`).  Pass
    ``True`` for the default window/size bounds or a
    :class:`~repro.optimizer.megabatch.MegabatchConfig` to tune them.
    Results are byte-identical to unbatched serving; only per-request
    ``engine_stats`` deltas become approximate when requests genuinely
    overlap (they already are for interleaved cache hits — see
    ``_request_stats``).

    ``tracer`` (a :class:`repro.obs.Tracer`, usually owned by the
    server transport) enables per-phase span recording: requests get
    ``cache_lookup``/``terms``/``evaluate``/``distill`` spans, async
    jobs get ``job``/``queue_wait`` spans re-parented to the submitter's
    context.  ``None`` (the default) disables tracing at zero cost.
    """

    def __init__(
        self,
        service: "BrokerService",
        *,
        engine_cache: EngineCache | None = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_finished_jobs: int = DEFAULT_MAX_FINISHED_JOBS,
        finished_job_ttl: float | None = None,
        backend: str | None = None,
        megabatch: "bool | MegabatchConfig" = False,
        tracer: Tracer | None = None,
        job_id_start: int = 1,
        job_id_stride: int = 1,
    ) -> None:
        if max_workers < 1:
            raise BrokerError(f"max_workers must be >= 1, got {max_workers!r}")
        if job_id_start < 1:
            raise BrokerError(
                f"job_id_start must be >= 1, got {job_id_start!r}"
            )
        if job_id_stride < 1:
            raise BrokerError(
                f"job_id_stride must be >= 1, got {job_id_stride!r}"
            )
        if max_finished_jobs < 1:
            raise BrokerError(
                f"max_finished_jobs must be >= 1, got {max_finished_jobs!r}"
            )
        if finished_job_ttl is not None and finished_job_ttl <= 0.0:
            raise BrokerError(
                f"finished_job_ttl must be > 0, got {finished_job_ttl!r}"
            )
        if backend is not None:
            # Fail fast on typos; None stays None (per-request resolution).
            resolve_backend(backend)
        self.service = service
        # Explicit None check: an empty EngineCache is falsy (__len__).
        self.engine_cache = (
            engine_cache if engine_cache is not None else EngineCache(cache_capacity)
        )
        self._owns_cache = engine_cache is None
        self.max_workers = max_workers
        self.max_finished_jobs = max_finished_jobs
        self.finished_job_ttl = finished_job_ttl
        self.backend = backend
        if isinstance(megabatch, MegabatchConfig):
            self.megabatch: MegabatchStacker | None = MegabatchStacker(megabatch)
        elif megabatch:
            self.megabatch = MegabatchStacker()
        else:
            self.megabatch = None
        # Tracing: None means disabled — every instrumentation point in
        # the session guards on a single `is not None` check, so the
        # untraced hot path is unchanged (see repro.obs).
        self.tracer = tracer
        if self.megabatch is not None and tracer is not None:
            self.megabatch.tracer = tracer
        self._jobs: "OrderedDict[str, BrokerJob]" = OrderedDict()
        self._futures: dict[str, Future] = {}
        self._executor: ThreadPoolExecutor | None = None
        # Strided ids let N sessions (one per worker process) mint from
        # disjoint arithmetic progressions: session i of N uses
        # start=i+1, stride=N, so any id routes back to its minter via
        # (n - 1) % N.  The defaults reproduce job-000001, job-000002...
        self._job_id_stride = job_id_stride
        self._counter = job_id_start - job_id_stride
        self._lock = threading.Lock()
        self._closed = False
        self._evicted_retrieved = 0
        self._evicted_ttl = 0
        # Injection point for eviction tests; monotonic so wall-clock
        # jumps never mass-expire a healthy table.
        self._clock = clock.monotonic

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "BrokerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down; in-flight jobs run to completion.

        When the session built its own engine cache, the cached engines'
        evaluation-backend pools are shut down too (after the job pool
        drains, so no in-flight request loses its workers).  A shared
        cache passed in by the caller is left untouched — other
        sessions may still be serving from it.
        """
        with self._lock:
            self._closed = True
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._owns_cache:
            for engine in self.engine_cache.engines():
                engine.close()

    # -- synchronous API ---------------------------------------------------

    def recommend(self, request: RecommendationRequest) -> "RecommendationReport":
        """Serve one request through the cross-request engine cache.

        Same contract as the v1 ``BrokerService.recommend``: providers
        lacking telemetry are skipped, and if none can serve the request
        an :class:`InsufficientTelemetryError` lists the gaps.
        """
        from repro.broker.service import RecommendationReport

        recommendations = []
        failures: list[str] = []
        for name in self._provider_names(request):
            try:
                recommendations.append(self._recommend_provider(request, name))
            except InsufficientTelemetryError as exc:
                failures.append(f"{name}: {exc}")
        if not recommendations:
            raise InsufficientTelemetryError(
                "no provider has enough telemetry to serve this request: "
                + "; ".join(failures)
            )
        return RecommendationReport(
            request_name=request.system_name,
            recommendations=tuple(recommendations),
        )

    def recommend_envelope(self, envelope: RecommendEnvelope) -> ReportEnvelope:
        """Wire-in, wire-out: serve a request envelope.

        When the session traces and no span is active yet (direct
        session use, or a transport that did not open a root span), an
        envelope carrying a traceparent gets a ``request`` root span of
        its own, so trace continuity survives every entry point.
        """
        tracer = self.tracer
        if tracer is not None and tracer.current() is None:
            parent = _trace_context(envelope)
            if parent is not None:
                with tracer.span(
                    "request",
                    parent=parent,
                    attrs={
                        "route": "recommend",
                        "request_id": envelope.request_id or "",
                    },
                ):
                    return ReportEnvelope.from_report(
                        self.recommend(envelope.request),
                        request_id=envelope.request_id,
                    )
        return ReportEnvelope.from_report(
            self.recommend(envelope.request), request_id=envelope.request_id
        )

    def recommend_many(
        self, requests: Iterable[RecommendationRequest]
    ) -> tuple["RecommendationReport", ...]:
        """Serve a batch of requests on the bounded worker pool.

        Reports come back in submission order and are bit-identical to
        sequential :meth:`recommend` calls — evaluation is deterministic
        and cached engines are pure, so concurrency only changes
        wall-clock, never results.
        """
        job_ids = [self.submit(request) for request in requests]
        return tuple(self.result(job_id) for job_id in job_ids)

    # -- job lifecycle -----------------------------------------------------

    def submit(
        self, request: "RecommendationRequest | RecommendEnvelope"
    ) -> str:
        """Queue a request on the worker pool; returns its job id."""
        envelope = (
            request
            if isinstance(request, RecommendEnvelope)
            else RecommendEnvelope(request=request)
        )
        with self._lock:
            if self._closed:
                raise BrokerError("session is closed; no further submissions")
            self._counter += self._job_id_stride
            job_id = f"job-{self._counter:06d}"
            if envelope.request_id is None:
                # dataclasses.replace keeps every other wire field
                # (trace, idempotency_key, future additions) intact.
                envelope = replace(envelope, request_id=job_id)
            job = BrokerJob(job_id=job_id, envelope=envelope)
            tracer = self.tracer
            if tracer is not None:
                ctx = tracer.current()
                if ctx is None:
                    ctx = _trace_context(envelope)
                if ctx is not None:
                    job.trace = ctx
                    job.submitted_at = clock.perf_counter()
            self._jobs[job_id] = job
            self._evict_finished_jobs()
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="broker-session",
                )
            self._futures[job_id] = self._executor.submit(self._run_job, job)
        return job_id

    def _run_job(self, job: BrokerJob) -> None:
        tracer = self.tracer
        if tracer is None or job.trace is None:
            self._execute_job(job)
            return
        # Worker threads are reused across jobs: activate this job's
        # context for the duration only, and always restore on the way
        # out or a later job inherits a stale trace.
        token = tracer.activate(job.trace)
        try:
            # Back-dating the job span to submit time makes queue_wait
            # a properly nested child covering the submit→run gap.
            with tracer.span(
                "job",
                start=job.submitted_at,
                attrs={"job_id": job.job_id},
            ) as span:
                if job.submitted_at is not None:
                    tracer.record(
                        "queue_wait",
                        parent=span.context,
                        start=job.submitted_at,
                        end=clock.perf_counter(),
                    )
                self._execute_job(job)
                span.attrs["status"] = job.status
        finally:
            tracer.restore(token)

    def _execute_job(self, job: BrokerJob) -> None:
        job.status = JOB_RUNNING
        try:
            job.report = self.recommend(job.request)
            job.status = JOB_DONE
        except Exception as exc:  # noqa: BLE001 - surfaced via result()
            job.error = exc
            job.status = JOB_FAILED
        finally:
            job.finished_at = self._clock()
            job.done.set()

    def _evict_finished_jobs(self) -> None:
        """Apply both finished-job retention policies (under ``_lock``).

        Reports are large (they hold full option rankings); without a
        bound, a server session fed a steady job stream leaks one
        report per request forever.  Two policies run on every
        submission:

        - **TTL** (``finished_job_ttl``): finished jobs older than the
          TTL are dropped whether or not their result was ever fetched —
          this is what reclaims fire-and-forget submissions.
        - **Count** (``max_finished_jobs``): beyond the cap, the oldest
          *retrieved* finished jobs are dropped; unretrieved jobs are
          exempt so a batch of any size stays collectable until it ages
          out.

        Both eviction counts surface through :meth:`metrics` (and the
        server's ``/metrics`` job gauges).  Pending and running jobs
        are never evicted.
        """
        if self.finished_job_ttl is not None:
            cutoff = self._clock() - self.finished_job_ttl
            expired = [
                job_id
                for job_id, job in self._jobs.items()
                if job.status in (JOB_DONE, JOB_FAILED)
                and job.finished_at is not None
                and job.finished_at <= cutoff
            ]
            for job_id in expired:
                del self._jobs[job_id]
                self._futures.pop(job_id, None)
            self._evicted_ttl += len(expired)
        retrieved = [
            job_id
            for job_id, job in self._jobs.items()
            if job.retrieved and job.status in (JOB_DONE, JOB_FAILED)
        ]
        overflow = retrieved[: max(0, len(retrieved) - self.max_finished_jobs)]
        for job_id in overflow:
            del self._jobs[job_id]
            self._futures.pop(job_id, None)
        self._evicted_retrieved += len(overflow)

    def job(self, job_id: str) -> BrokerJob:
        """Look up a job record by id."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError as exc:
                raise UnknownNameError(
                    unknown_name_message("job", job_id, self._jobs)
                ) from exc

    def poll(self, job_id: str) -> str:
        """A job's current lifecycle state (non-blocking)."""
        return self.job(job_id).status

    def result(
        self, job_id: str, timeout: float | None = None
    ) -> "RecommendationReport":
        """Block until a job finishes and return (or re-raise) its outcome."""
        return self._job_outcome(self.job(job_id), timeout)

    def _job_outcome(
        self, job: BrokerJob, timeout: float | None
    ) -> "RecommendationReport":
        """The wait/mark-retrieved/raise-or-return core of :meth:`result`.

        Operates on a captured record, never re-resolving the id — once
        a job is marked retrieved, a concurrent ``submit()`` may evict
        it from the table, and a second lookup would misreport a
        completed job as unknown.
        """
        if not job.done.wait(timeout):
            raise BrokerError(
                f"job {job.job_id!r} did not finish within {timeout!r}s "
                f"(status: {job.status})"
            )
        job.retrieved = True
        if job.error is not None:
            raise job.error
        assert job.report is not None
        return job.report

    def result_envelope(
        self, job_id: str, timeout: float | None = None
    ) -> ReportEnvelope:
        """Wire form of :meth:`result`."""
        job = self.job(job_id)
        report = self._job_outcome(job, timeout)
        return ReportEnvelope.from_report(
            report, request_id=job.envelope.request_id
        )

    def jobs(self) -> tuple[BrokerJob, ...]:
        """All job records, in submission order."""
        with self._lock:
            return tuple(self._jobs.values())

    # -- observability -----------------------------------------------------

    def metrics(self) -> dict[str, object]:
        """JSON-safe operational counters for this session.

        The supported way to read cache behaviour without reaching into
        session internals: engine-cache hit/miss/eviction counts (via
        :meth:`EngineCacheStats.to_dict`), how many engines are
        currently cached and their cumulative cluster-term precomputes,
        and the job table broken down by lifecycle state.  The server's
        ``/metrics`` endpoint exports exactly this dictionary.
        """
        statuses = {
            JOB_PENDING: 0,
            JOB_RUNNING: 0,
            JOB_DONE: 0,
            JOB_FAILED: 0,
        }
        for job in self.jobs():
            statuses[job.status] += 1
        with self._lock:
            evicted = {
                "retrieved": self._evicted_retrieved,
                "ttl": self._evicted_ttl,
            }
        return {
            "engine_cache": self.engine_cache.stats.to_dict(),
            "engines_cached": len(self.engine_cache),
            "cluster_term_computations": (
                self.engine_cache.cluster_term_computations()
            ),
            "jobs": dict(statuses),
            "jobs_evicted": evicted,
            "job_queue_depth": statuses[JOB_PENDING] + statuses[JOB_RUNNING],
            "megabatch": (
                None if self.megabatch is None
                else self.megabatch.stats.snapshot().to_dict()
            ),
        }

    # -- streaming ---------------------------------------------------------

    def stream(
        self,
        request: "RecommendationRequest | RecommendEnvelope",
        *,
        progress_every: int = 256,
        request_id: str | None = None,
    ) -> Iterator[ProgressEvent]:
        """Serve a request as a stream of progress/result events.

        Exhaustive (brute-force) sweeps are distilled on the fly through
        :class:`~repro.optimizer.result.ResultAccumulator` with
        ``keep_options=False`` — option tables are never materialized,
        and a ``progress`` event fires every ``progress_every``
        evaluations.  The final ``completed`` event carries the
        :class:`ReportEnvelope` in its detail.
        """
        if progress_every < 1:
            raise BrokerError(
                f"progress_every must be >= 1, got {progress_every!r}"
            )
        if isinstance(request, RecommendEnvelope):
            request_id = request_id or request.request_id
            request = request.request
        yield ProgressEvent(
            "accepted",
            request_id=request_id,
            detail={"system_name": request.system_name},
        )
        from repro.broker.service import RecommendationReport

        recommendations = []
        failures: list[str] = []
        for name in self._provider_names(request):
            yield ProgressEvent(
                "provider-started", request_id=request_id, provider=name
            )
            try:
                if request.strategy == "brute-force":
                    streamed = None
                    for event_or_rec in self._stream_provider(
                        request, name, request_id, progress_every
                    ):
                        if isinstance(event_or_rec, ProgressEvent):
                            yield event_or_rec
                        else:
                            streamed = event_or_rec
                    recommendation = streamed
                else:
                    recommendation = self._recommend_provider(request, name)
            except InsufficientTelemetryError as exc:
                failures.append(f"{name}: {exc}")
                yield ProgressEvent(
                    "provider-skipped",
                    request_id=request_id,
                    provider=name,
                    detail={"reason": str(exc)},
                )
                continue
            recommendations.append(recommendation)
            yield ProgressEvent(
                "provider-completed",
                request_id=request_id,
                provider=name,
                detail={
                    "best": recommendation.result.best.label,
                    "monthly_total": recommendation.monthly_total,
                    "evaluations": recommendation.result.evaluations,
                },
            )
        if not recommendations:
            yield ProgressEvent(
                "failed",
                request_id=request_id,
                detail={
                    "reason": "no provider has enough telemetry: "
                    + "; ".join(failures)
                },
            )
            return
        report = RecommendationReport(
            request_name=request.system_name,
            recommendations=tuple(recommendations),
        )
        yield ProgressEvent(
            "completed",
            request_id=request_id,
            detail={
                "report": ReportEnvelope.from_report(
                    report, request_id=request_id
                ).to_dict()
            },
        )

    def _stream_provider(
        self,
        request: RecommendationRequest,
        name: str,
        request_id: str | None,
        progress_every: int,
    ) -> Iterator["ProgressEvent | ProviderRecommendation"]:
        """Distilled streaming sweep for one provider (brute force only).

        Yields ``progress`` events during the sweep and finally the
        finished :class:`ProviderRecommendation`.  The engine's lock is
        held only while evaluating each block, never across a yield —
        a partially-consumed (or abandoned) stream generator must not
        hold the shared engine hostage against other requests.
        """
        from repro.broker.service import ProviderRecommendation

        entry = self._cache_entry(request, name)
        engine = entry.engine
        tracer = self.tracer
        trace_ctx = tracer.current() if tracer is not None else None
        distill_started = clock.perf_counter() if trace_ctx is not None else 0.0
        accumulator = ResultAccumulator(
            space_size=engine.space.size,
            strategy="brute-force",
            keep_options=False,
        )
        candidates = enumerate(engine.space.candidates_in_paper_order(), start=1)
        # No backend rebind here: streaming interleaves progress events
        # with evaluation, so candidates go through engine.evaluate()
        # one at a time — always in-process, whatever the backend.
        # Rebinding would only churn a warm engine's worker pool.
        try:
            with entry.lock:
                before = engine.stats.snapshot()
            exhausted = False
            while not exhausted:
                with entry.lock:
                    for _ in range(progress_every):
                        item = next(candidates, None)
                        if item is None:
                            exhausted = True
                            break
                        option_id, indices = item
                        accumulator.add(engine.evaluate(option_id, indices))
                if not exhausted:
                    yield ProgressEvent(
                        "progress",
                        request_id=request_id,
                        provider=name,
                        detail={
                            "evaluated": accumulator.count,
                            "space_size": engine.space.size,
                        },
                    )
            with entry.lock:
                after = engine.stats.snapshot()
                first_service = entry.unserved
                entry.unserved = False
            if trace_ctx is not None:
                # Pre-timed: a span context manager must not straddle
                # yields — an abandoned generator would never close it.
                tracer.record(
                    "distill",
                    parent=trace_ctx,
                    start=distill_started,
                    end=clock.perf_counter(),
                    attrs={
                        "provider": name,
                        "evaluated": str(accumulator.count),
                    },
                )
        finally:
            # Runs when the sweep completes *and* when a partially
            # consumed stream generator is abandoned — either way a
            # deferred eviction close falls to the last holder.
            self.engine_cache.finish(entry)
        yield ProviderRecommendation(
            provider_name=name,
            base_system=engine.problem.base_system,
            result=accumulator.finish(),
            engine_stats=_request_stats(before, after, first_service),
        )

    # -- internals ---------------------------------------------------------

    def _provider_names(self, request: RecommendationRequest) -> tuple[str, ...]:
        return request.providers or tuple(sorted(self.service.providers))

    def _request_backend(self, request: RecommendationRequest) -> str:
        """The concrete evaluation backend one request should run on.

        Precedence: the request's own ``backend``, then the session
        default, then :func:`resolve_backend`'s environment/``parallel``
        fallback.
        """
        return resolve_backend(
            request.backend or self.backend,
            parallel=request.parallel,
            mode=request.engine,
        )

    def _cache_entry(
        self, request: RecommendationRequest, provider_name: str
    ) -> _CacheEntry:
        """Resolve (or build) the cached engine serving one provider.

        Raises :class:`InsufficientTelemetryError` when the knowledge
        base cannot estimate the request's component kinds for this
        provider.
        """
        provider = self.service.provider(provider_name)
        base_system = self.service.materialize_topology(request, provider)
        failover_estimates = {
            requirement.component_kind: self.service.knowledge_base.estimate(
                provider_name, requirement.component_kind
            ).failover_minutes
            for requirement in request.clusters
        }
        key = EngineKey.build(
            provider_name,
            base_system,
            request.contract,
            provider.rate_card,
            failover_minutes=failover_estimates,
            extended_catalog=request.extended_catalog,
            engine_mode=request.engine,
        )
        backend = self._request_backend(request)
        tracer = self.tracer

        def build_engine() -> EvaluationEngine:
            registry = registry_for_provider(
                provider,
                failover_minutes=failover_estimates,
                extended=request.extended_catalog,
            )
            problem = OptimizationProblem(
                base_system=base_system,
                registry=registry,
                contract=request.contract,
                labor_rate=LaborRate(provider.rate_card.labor_rate_per_hour),
            )
            # The factory runs on the requesting thread under the entry
            # lock, so this span nests inside cache_lookup — the n*k
            # cluster-term precompute is exactly a cache miss's cost.
            with maybe_span(tracer, "terms", attrs={"provider": provider_name}):
                return EvaluationEngine(
                    problem, mode=request.engine, backend=backend
                )

        with maybe_span(
            tracer, "cache_lookup", attrs={"provider": provider_name}
        ):
            entry = self.engine_cache.entry(key, build_engine)
        if tracer is not None:
            # One tracer serves the whole session; per-request identity
            # lives in contextvars, so a shared cached engine can simply
            # keep pointing at it.
            entry.engine.tracer = tracer
        return entry

    def _recommend_provider(
        self, request: RecommendationRequest, name: str
    ) -> "ProviderRecommendation":
        """One provider's recommendation, via the engine cache."""
        from repro.broker.service import (
            _STRATEGY_FUNCTIONS,
            ProviderRecommendation,
        )

        entry = self._cache_entry(request, name)
        engine = entry.engine
        optimize = _STRATEGY_FUNCTIONS[request.strategy]
        backend = self._request_backend(request)
        if self.megabatch is not None and backend == "vector":
            return self._megabatch_provider(request, name, entry, optimize)
        # A cache hit may serve the search from a different worker
        # thread later; sequential engines are not thread-safe, so each
        # entry's lock serializes use of its engine.  A warm engine is
        # rebound to the request's backend in place — term and result
        # caches survive the switch.
        try:
            with entry.lock:
                # Megabatching sharers evaluate without holding the
                # lock; rebinding the backend under them would corrupt
                # their pass, so exclusive use drains them first.
                while entry.shared:
                    entry.cond.wait()
                engine.set_backend(backend)
                before = engine.stats.snapshot()
                with maybe_span(
                    self.tracer,
                    "evaluate",
                    attrs={
                        "provider": name,
                        "strategy": request.strategy,
                        "backend": backend,
                    },
                ):
                    result: OptimizationResult = optimize(
                        engine.problem, engine=engine
                    )
                after = engine.stats.snapshot()
                first_service = entry.unserved
                entry.unserved = False
        finally:
            # If the entry was LRU-evicted while this request held it,
            # its deferred close falls to us.
            self.engine_cache.finish(entry)
        return ProviderRecommendation(
            provider_name=name,
            base_system=engine.problem.base_system,
            result=result,
            engine_stats=_request_stats(before, after, first_service),
        )

    def _megabatch_provider(
        self, request: RecommendationRequest, name: str, entry, optimize
    ) -> "ProviderRecommendation":
        """Serve one vector-backed request as a megabatch *sharer*.

        Sharers take the entry lock only to join and leave: the first
        sharer in rebinds the engine to the vector backend and attaches
        the session's stacker (upgrading the engine's cache lock), the
        last one out detaches it and wakes any waiting exclusive user.
        The evaluation itself runs outside the entry lock so concurrent
        sharers reach the stacker together — that is the whole point.
        Candidate results are deterministic and spliced per request, so
        reports stay byte-identical to unshared serving; only the
        ``engine_stats`` deltas are approximate under true overlap.
        """
        from repro.broker.service import ProviderRecommendation

        engine = entry.engine
        stacker = self.megabatch
        with entry.lock:
            if entry.shared == 0:
                engine.set_backend("vector")
                engine.enable_megabatch(stacker)
            entry.shared += 1
            # repro: lint-ok[REP002] MegabatchStacker.join registers a sharer; it never blocks
            stacker.join(engine.uid)
            before = engine.stats.snapshot()
            first_service = entry.unserved
            entry.unserved = False
        try:
            with maybe_span(
                self.tracer,
                "evaluate",
                attrs={
                    "provider": name,
                    "strategy": request.strategy,
                    "backend": "vector",
                    "megabatch": "true",
                },
            ):
                result: OptimizationResult = optimize(
                    engine.problem, engine=engine
                )
            after = engine.stats.snapshot()
        finally:
            with entry.lock:
                stacker.leave(engine.uid)
                entry.shared -= 1
                if entry.shared == 0:
                    engine.disable_megabatch()
                    entry.cond.notify_all()
            self.engine_cache.finish(entry)
        return ProviderRecommendation(
            provider_name=name,
            base_system=engine.problem.base_system,
            result=result,
            engine_stats=_request_stats(before, after, first_service),
        )
