"""The broker's v2 wire protocol: request and report envelopes.

PR 1 left the broker with exactly one entry point — a synchronous
in-process ``recommend(request) -> report`` call.  A brokered *service*
needs a wire shape: customers submit requests as documents, poll jobs,
and read ranked reports back.  This module defines that shape:

- :class:`RecommendEnvelope` wraps a
  :class:`~repro.broker.request.RecommendationRequest` with a request id
  and schema version;
- :class:`ReportEnvelope` is the flattened, JSON-safe answer — the
  per-provider ranking with distilled best / min-penalty option rows
  and engine-cache statistics, *not* the full option table, so huge
  sweeps serialize in O(providers);
- :class:`ProgressEvent` is the streaming unit emitted while a request
  is being served.

All objects round-trip through ``to_dict()`` / ``from_dict()`` (and
``to_json()`` / ``from_json()``), following the versioned, flat,
unknown-key-rejecting idiom of :mod:`repro.topology.serialization`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.broker.request import ClusterRequirement, RecommendationRequest
from repro.errors import ValidationError
from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.sla.contract import Contract
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    PenaltyClause,
    ServiceCreditPenalty,
    TieredPenalty,
)
from repro.topology.cluster import Layer

#: Version of the broker's request/response wire format.  Version 1 was
#: the (implicit) in-process dataclass API; version 2 is the first
#: serialized protocol.
ENVELOPE_SCHEMA_VERSION = 2


def _check_keys(payload: Mapping[str, Any], allowed: set[str], what: str) -> None:
    """Reject unknown keys so typos fail loudly instead of silently."""
    unknown = set(payload) - allowed
    if unknown:
        raise ValidationError(
            f"unknown {what} keys: {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def _check_version(payload: Mapping[str, Any], what: str) -> None:
    version = payload.get("schema_version", ENVELOPE_SCHEMA_VERSION)
    if version != ENVELOPE_SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported {what} schema_version {version!r}; "
            f"this library reads version {ENVELOPE_SCHEMA_VERSION}"
        )


# -- contract (de)serialization -------------------------------------------

def penalty_to_dict(clause: PenaltyClause) -> dict[str, Any]:
    """Serialize any built-in penalty clause shape."""
    if isinstance(clause, NoPenalty):
        return {"kind": "none"}
    if isinstance(clause, LinearPenalty):
        return {"kind": "linear", "rate_per_hour": clause.rate_per_hour}
    if isinstance(clause, TieredPenalty):
        return {
            "kind": "tiered",
            "tiers": [list(tier) for tier in clause.tiers],
        }
    if isinstance(clause, CappedPenalty):
        return {
            "kind": "capped",
            "monthly_cap": clause.monthly_cap,
            "inner": penalty_to_dict(clause.inner),
        }
    if isinstance(clause, ServiceCreditPenalty):
        return {
            "kind": "service-credit",
            "monthly_contract_value": clause.monthly_contract_value,
            "schedule": [list(step) for step in clause.schedule],
        }
    raise ValidationError(
        f"cannot serialize penalty clause of type {type(clause).__name__}"
    )


def penalty_from_dict(payload: Mapping[str, Any]) -> PenaltyClause:
    """Deserialize a penalty clause; unknown kinds are rejected."""
    kind = payload.get("kind")
    if kind == "none":
        _check_keys(payload, {"kind"}, "penalty")
        return NoPenalty()
    if kind == "linear":
        _check_keys(payload, {"kind", "rate_per_hour"}, "penalty")
        return LinearPenalty(float(payload["rate_per_hour"]))
    if kind == "tiered":
        _check_keys(payload, {"kind", "tiers"}, "penalty")
        return TieredPenalty(
            tuple((float(width), float(rate)) for width, rate in payload["tiers"])
        )
    if kind == "capped":
        _check_keys(payload, {"kind", "monthly_cap", "inner"}, "penalty")
        return CappedPenalty(
            inner=penalty_from_dict(payload["inner"]),
            monthly_cap=float(payload["monthly_cap"]),
        )
    if kind == "service-credit":
        _check_keys(
            payload, {"kind", "monthly_contract_value", "schedule"}, "penalty"
        )
        return ServiceCreditPenalty(
            monthly_contract_value=float(payload["monthly_contract_value"]),
            schedule=tuple(
                (float(threshold), float(fraction))
                for threshold, fraction in payload["schedule"]
            ),
        )
    raise ValidationError(
        f"unknown penalty kind {kind!r}; valid: "
        "['none', 'linear', 'tiered', 'capped', 'service-credit']"
    )


def contract_to_dict(contract: Contract) -> dict[str, Any]:
    """Serialize a contract (SLA percent plus penalty clause)."""
    return {
        "sla_percent": contract.sla.target_percent,
        "penalty": penalty_to_dict(contract.penalty),
    }


def contract_from_dict(payload: Mapping[str, Any]) -> Contract:
    """Deserialize a contract; unknown keys are rejected."""
    _check_keys(payload, {"sla_percent", "penalty"}, "contract")
    from repro.sla.sla import UptimeSLA

    return Contract(
        sla=UptimeSLA(float(payload["sla_percent"])),
        penalty=penalty_from_dict(payload["penalty"]),
    )


# -- request (de)serialization --------------------------------------------

def _cluster_requirement_to_dict(requirement: ClusterRequirement) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "name": requirement.name,
        "layer": requirement.layer.value,
        "nodes": requirement.nodes,
    }
    if requirement.sku is not None:
        payload["sku"] = requirement.sku
    return payload


def _cluster_requirement_from_dict(payload: Mapping[str, Any]) -> ClusterRequirement:
    _check_keys(payload, {"name", "layer", "nodes", "sku"}, "cluster requirement")
    try:
        layer = Layer(payload["layer"])
    except ValueError as exc:
        raise ValidationError(
            f"unknown layer {payload['layer']!r}; expected one of "
            f"{[member.value for member in Layer]}"
        ) from exc
    return ClusterRequirement(
        name=payload["name"],
        layer=layer,
        nodes=int(payload["nodes"]),
        sku=payload.get("sku"),
    )


def request_to_dict(request: RecommendationRequest) -> dict[str, Any]:
    """Serialize a recommendation request to plain JSON-safe types."""
    return {
        "system_name": request.system_name,
        "clusters": [
            _cluster_requirement_to_dict(requirement)
            for requirement in request.clusters
        ],
        "contract": contract_to_dict(request.contract),
        "providers": list(request.providers) if request.providers else None,
        "strategy": request.strategy,
        "engine": request.engine,
        "parallel": request.parallel,
        "backend": request.backend,
        "extended_catalog": request.extended_catalog,
        "metadata": dict(request.metadata),
    }


def request_from_dict(payload: Mapping[str, Any]) -> RecommendationRequest:
    """Deserialize a request; field validation runs in the dataclass."""
    allowed = {
        "system_name",
        "clusters",
        "contract",
        "providers",
        "strategy",
        "engine",
        "parallel",
        "backend",
        "extended_catalog",
        "metadata",
    }
    _check_keys(payload, allowed, "request")
    providers = payload.get("providers")
    return RecommendationRequest(
        system_name=payload["system_name"],
        clusters=tuple(
            _cluster_requirement_from_dict(item) for item in payload["clusters"]
        ),
        contract=contract_from_dict(payload["contract"]),
        providers=tuple(providers) if providers else None,
        strategy=payload.get("strategy", "pruned"),
        engine=payload.get("engine", "incremental"),
        parallel=bool(payload.get("parallel", False)),
        backend=payload.get("backend"),
        extended_catalog=bool(payload.get("extended_catalog", False)),
        metadata=dict(payload.get("metadata", {})),
    )


# -- envelopes -------------------------------------------------------------

@dataclass(frozen=True)
class RecommendEnvelope:
    """A versioned, addressable recommendation request document.

    ``trace`` is an optional W3C-traceparent-style string
    (``00-<32 hex>-<16 hex>-01``, see :mod:`repro.obs.trace`): a client
    that stamps it gets the server-side span tree recorded under its
    own trace id.  It is pure observability metadata — it never
    influences the recommendation and is ignored unless the server was
    started with tracing enabled.

    ``idempotency_key`` is an optional client-chosen opaque string
    deduplicating retried submissions: the server replays the original
    response byte-identically for a repeated ``(principal, key)`` pair
    instead of re-executing.  Like ``trace`` it never influences the
    recommendation itself.
    """

    request: RecommendationRequest
    request_id: str | None = None
    trace: str | None = None
    idempotency_key: str | None = None

    def __post_init__(self) -> None:
        if self.trace is not None and not isinstance(self.trace, str):
            raise ValidationError(
                f"trace must be a traceparent string or None, "
                f"got {type(self.trace).__name__}"
            )
        if self.idempotency_key is not None and not isinstance(
            self.idempotency_key, str
        ):
            raise ValidationError(
                f"idempotency_key must be a string or None, "
                f"got {type(self.idempotency_key).__name__}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Serialize, embedding the schema version and document kind."""
        return {
            "schema_version": ENVELOPE_SCHEMA_VERSION,
            "kind": "recommend-request",
            "request_id": self.request_id,
            "request": request_to_dict(self.request),
            "trace": self.trace,
            "idempotency_key": self.idempotency_key,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RecommendEnvelope":
        """Deserialize; validates version, kind and key set."""
        _check_version(payload, "recommend envelope")
        _check_keys(
            payload,
            {
                "schema_version",
                "kind",
                "request_id",
                "request",
                "trace",
                "idempotency_key",
            },
            "recommend envelope",
        )
        kind = payload.get("kind", "recommend-request")
        if kind != "recommend-request":
            raise ValidationError(
                f"expected kind 'recommend-request', got {kind!r}"
            )
        return cls(
            request=request_from_dict(payload["request"]),
            request_id=payload.get("request_id"),
            trace=payload.get("trace"),
            idempotency_key=payload.get("idempotency_key"),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string (compact by default, for JSONL)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RecommendEnvelope":
        """Deserialize from a JSON string."""
        return cls.from_dict(_loads(text, "recommend envelope"))


@dataclass(frozen=True)
class OptionSummary:
    """The wire form of one evaluated option (a distilled table row)."""

    option_id: int
    choice_names: tuple[str, ...]
    clustered_components: tuple[str, ...]
    uptime_probability: float
    ha_cost: float
    expected_penalty: float
    tco_total: float
    total_with_base: float
    meets_sla: bool

    @classmethod
    def from_option(cls, option: EvaluatedOption) -> "OptionSummary":
        """Distill an evaluated option without forcing its topology."""
        return cls(
            option_id=option.option_id,
            choice_names=tuple(option.choice_names),
            clustered_components=option.clustered_components,
            uptime_probability=option.tco.uptime_probability,
            ha_cost=option.tco.ha_cost,
            expected_penalty=option.tco.expected_penalty,
            tco_total=option.tco.total,
            total_with_base=option.tco.total_with_base,
            meets_sla=option.meets_sla,
        )

    @property
    def label(self) -> str:
        """Short human label, mirroring :attr:`EvaluatedOption.label`."""
        if not self.clustered_components:
            return f"#{self.option_id} no HA"
        return f"#{self.option_id} HA: {'+'.join(self.clustered_components)}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "option_id": self.option_id,
            "choice_names": list(self.choice_names),
            "clustered_components": list(self.clustered_components),
            "uptime_probability": self.uptime_probability,
            "ha_cost": self.ha_cost,
            "expected_penalty": self.expected_penalty,
            "tco_total": self.tco_total,
            "total_with_base": self.total_with_base,
            "meets_sla": self.meets_sla,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OptionSummary":
        allowed = {
            "option_id",
            "choice_names",
            "clustered_components",
            "uptime_probability",
            "ha_cost",
            "expected_penalty",
            "tco_total",
            "total_with_base",
            "meets_sla",
        }
        _check_keys(payload, allowed, "option summary")
        return cls(
            option_id=int(payload["option_id"]),
            choice_names=tuple(payload["choice_names"]),
            clustered_components=tuple(payload["clustered_components"]),
            uptime_probability=float(payload["uptime_probability"]),
            ha_cost=float(payload["ha_cost"]),
            expected_penalty=float(payload["expected_penalty"]),
            tco_total=float(payload["tco_total"]),
            total_with_base=float(payload["total_with_base"]),
            meets_sla=bool(payload["meets_sla"]),
        )


@dataclass(frozen=True)
class ProviderReport:
    """One provider's outcome on the wire: ranking row + search audit."""

    provider_name: str
    strategy: str
    evaluations: int
    pruned: int
    space_size: int
    best: OptionSummary
    min_penalty: OptionSummary
    engine_stats: dict[str, int] | None = None

    @property
    def monthly_total(self) -> float:
        """Best option's Eq. 5 TCO plus the provider's base infra cost."""
        return self.best.total_with_base

    @classmethod
    def from_result(
        cls,
        provider_name: str,
        result: OptimizationResult,
        engine_stats: Mapping[str, int] | None = None,
    ) -> "ProviderReport":
        """Distill one provider's optimization result."""
        return cls(
            provider_name=provider_name,
            strategy=result.strategy,
            evaluations=result.evaluations,
            pruned=result.pruned,
            space_size=result.space_size,
            best=OptionSummary.from_option(result.best),
            min_penalty=OptionSummary.from_option(result.min_penalty_option),
            engine_stats=dict(engine_stats) if engine_stats is not None else None,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "provider_name": self.provider_name,
            "strategy": self.strategy,
            "evaluations": self.evaluations,
            "pruned": self.pruned,
            "space_size": self.space_size,
            "best": self.best.to_dict(),
            "min_penalty": self.min_penalty.to_dict(),
            "engine_stats": self.engine_stats,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProviderReport":
        allowed = {
            "provider_name",
            "strategy",
            "evaluations",
            "pruned",
            "space_size",
            "best",
            "min_penalty",
            "engine_stats",
        }
        _check_keys(payload, allowed, "provider report")
        stats = payload.get("engine_stats")
        return cls(
            provider_name=payload["provider_name"],
            strategy=payload["strategy"],
            evaluations=int(payload["evaluations"]),
            pruned=int(payload["pruned"]),
            space_size=int(payload["space_size"]),
            best=OptionSummary.from_dict(payload["best"]),
            min_penalty=OptionSummary.from_dict(payload["min_penalty"]),
            engine_stats={k: int(v) for k, v in stats.items()} if stats else None,
        )


@dataclass(frozen=True)
class ReportEnvelope:
    """The broker's versioned answer document: providers ranked by cost."""

    request_name: str
    providers: tuple[ProviderReport, ...]
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.providers:
            raise ValidationError("report envelope has no providers")

    @property
    def best(self) -> ProviderReport:
        """The cheapest provider placement (including base infra)."""
        return min(self.providers, key=lambda entry: entry.monthly_total)

    def for_provider(self, provider_name: str) -> ProviderReport:
        """Look up one provider's wire report."""
        from repro.errors import UnknownNameError, unknown_name_message

        for entry in self.providers:
            if entry.provider_name == provider_name:
                return entry
        raise UnknownNameError(
            unknown_name_message(
                "provider",
                provider_name,
                [entry.provider_name for entry in self.providers],
                label="have",
            )
        )

    @classmethod
    def from_report(
        cls, report: Any, request_id: str | None = None
    ) -> "ReportEnvelope":
        """Distill an in-process :class:`RecommendationReport`."""
        return cls(
            request_name=report.request_name,
            providers=tuple(
                ProviderReport.from_result(
                    recommendation.provider_name,
                    recommendation.result,
                    engine_stats=(
                        recommendation.engine_stats.to_dict()
                        if recommendation.engine_stats is not None
                        else None
                    ),
                )
                for recommendation in report.recommendations
            ),
            request_id=request_id,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": ENVELOPE_SCHEMA_VERSION,
            "kind": "recommend-report",
            "request_id": self.request_id,
            "request_name": self.request_name,
            "providers": [entry.to_dict() for entry in self.providers],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReportEnvelope":
        _check_version(payload, "report envelope")
        _check_keys(
            payload,
            {"schema_version", "kind", "request_id", "request_name", "providers"},
            "report envelope",
        )
        kind = payload.get("kind", "recommend-report")
        if kind != "recommend-report":
            raise ValidationError(
                f"expected kind 'recommend-report', got {kind!r}"
            )
        return cls(
            request_name=payload["request_name"],
            providers=tuple(
                ProviderReport.from_dict(item) for item in payload["providers"]
            ),
            request_id=payload.get("request_id"),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string (compact by default, for JSONL)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ReportEnvelope":
        """Deserialize from a JSON string."""
        return cls.from_dict(_loads(text, "report envelope"))

    def describe(self) -> str:
        """Ranked one-line-per-provider summary (wire-side describe)."""
        ranked = sorted(self.providers, key=lambda entry: entry.monthly_total)
        lines = [f"Brokered recommendation for {self.request_name!r}:"]
        lines.extend(
            f"  {entry.provider_name:<12} {entry.best.label:<28} "
            f"TCO+base=${entry.monthly_total:,.2f}"
            for entry in ranked
        )
        lines.append(
            f"  => place on {self.best.provider_name} as {self.best.best.label}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ErrorEnvelope:
    """The wire form of a failed request: structured, versioned, typed.

    Transports must answer *every* failure with one of these (plus a
    non-2xx status) — never a traceback, never a dropped connection.
    ``error`` is a stable machine-readable slug (``validation-error``,
    ``unknown-name``, ...); ``message`` is the human-readable detail.
    """

    status: int
    error: str
    message: str
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not 400 <= self.status <= 599:
            raise ValidationError(
                f"error status must be in 400..599, got {self.status!r}"
            )
        if not self.error:
            raise ValidationError("error slug must be non-empty")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": ENVELOPE_SCHEMA_VERSION,
            "kind": "error",
            "status": self.status,
            "error": self.error,
            "message": self.message,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ErrorEnvelope":
        _check_version(payload, "error envelope")
        _check_keys(
            payload,
            {"schema_version", "kind", "status", "error", "message", "request_id"},
            "error envelope",
        )
        kind = payload.get("kind", "error")
        if kind != "error":
            raise ValidationError(f"expected kind 'error', got {kind!r}")
        return cls(
            status=int(payload["status"]),
            error=payload["error"],
            message=payload["message"],
            request_id=payload.get("request_id"),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string (compact by default, for JSONL)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ErrorEnvelope":
        """Deserialize from a JSON string."""
        return cls.from_dict(_loads(text, "error envelope"))


#: Progress event kinds a streaming recommendation may emit, in order.
EVENT_KINDS = (
    "accepted",
    "provider-started",
    "progress",
    "provider-completed",
    "provider-skipped",
    "completed",
    "failed",
)


@dataclass(frozen=True)
class ProgressEvent:
    """One streaming event from a running recommendation."""

    kind: str
    request_id: str | None = None
    provider: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValidationError(
                f"unknown event kind {self.kind!r}; valid: {EVENT_KINDS}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "request_id": self.request_id,
            "provider": self.provider,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProgressEvent":
        _check_keys(
            payload,
            {"kind", "request_id", "provider", "detail"},
            "progress event",
        )
        if "kind" not in payload:
            raise ValidationError("progress event is missing 'kind'")
        detail = payload.get("detail") or {}
        if not isinstance(detail, Mapping):
            raise ValidationError(
                f"progress event detail must be a mapping, got {type(detail).__name__}"
            )
        return cls(
            kind=payload["kind"],
            request_id=payload.get("request_id"),
            provider=payload.get("provider"),
            detail=dict(detail),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string (compact by default, for SSE/JSONL)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProgressEvent":
        """Deserialize from a JSON string."""
        return cls.from_dict(_loads(text, "progress event"))


def _loads(text: str, what: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid {what} JSON: {exc}") from exc
