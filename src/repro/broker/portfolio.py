"""Portfolio view: a broker serving many customers at once.

The paper's §I claim is that ad-hoc HA wastes money *across a broker's
book of business*.  This module aggregates: run a batch of customer
requests through the brokered optimization and report, per customer and
in total, what the framework saves against the ad-hoc baseline (HA on
every layer — the posture the case-study provider actually deployed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.broker.request import RecommendationRequest
from repro.broker.service import BrokerService
from repro.errors import BrokerError
from repro.units import format_money


@dataclass(frozen=True)
class CustomerOutcome:
    """One customer's optimized placement vs the ad-hoc baseline."""

    request_name: str
    provider_name: str
    recommended_label: str
    recommended_tco: float
    ad_hoc_tco: float

    @property
    def monthly_savings(self) -> float:
        """Dollars/month the framework saves for this customer."""
        return self.ad_hoc_tco - self.recommended_tco

    @property
    def savings_fraction(self) -> float:
        """Savings as a fraction of the ad-hoc spend."""
        if self.ad_hoc_tco <= 0.0:
            return 0.0
        return self.monthly_savings / self.ad_hoc_tco

    def describe(self) -> str:
        """One customer row."""
        return (
            f"{self.request_name:<22} {self.provider_name:<12} "
            f"{self.recommended_label:<30} "
            f"ad-hoc {format_money(self.ad_hoc_tco):>11} -> "
            f"{format_money(self.recommended_tco):>11} "
            f"({self.savings_fraction * 100:5.1f}% saved)"
        )


@dataclass(frozen=True)
class PortfolioReport:
    """Aggregate savings across the broker's customer book."""

    outcomes: tuple[CustomerOutcome, ...]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise BrokerError("portfolio report needs at least one customer")

    @property
    def total_ad_hoc(self) -> float:
        """Monthly spend if every customer ran ad-hoc all-layer HA."""
        return sum(outcome.ad_hoc_tco for outcome in self.outcomes)

    @property
    def total_recommended(self) -> float:
        """Monthly spend under the framework's recommendations."""
        return sum(outcome.recommended_tco for outcome in self.outcomes)

    @property
    def total_savings(self) -> float:
        """Dollars/month saved across the book."""
        return self.total_ad_hoc - self.total_recommended

    @property
    def savings_fraction(self) -> float:
        """Aggregate savings fraction."""
        if self.total_ad_hoc <= 0.0:
            return 0.0
        return self.total_savings / self.total_ad_hoc

    def describe(self) -> str:
        """Portfolio table with the aggregate line."""
        lines = ["Broker portfolio:"]
        lines.extend(f"  {outcome.describe()}" for outcome in self.outcomes)
        lines.append(
            f"  TOTAL: {format_money(self.total_ad_hoc)} -> "
            f"{format_money(self.total_recommended)} per month "
            f"({self.savings_fraction * 100:.1f}% saved, "
            f"{format_money(self.total_savings)}/month)"
        )
        return "\n".join(lines)


def _ad_hoc_tco(recommendation) -> float:
    """TCO of the maximal-HA option: every layer clustered.

    This is the ad-hoc posture of the paper's case study (option #8).
    Among evaluated options it is the one with the most clustered
    components (ties broken by highest C_HA); with the pruned search it
    may have been clipped, in which case the most-clustered evaluated
    option stands in (pruning only clips options *dominated* by cheaper
    SLA-meeting ones, so the stand-in is a conservative baseline).
    """
    options = recommendation.result.options
    return max(
        options,
        key=lambda option: (len(option.clustered_components), option.tco.ha_cost),
    ).tco.total


def optimize_portfolio(
    broker: BrokerService,
    requests: Sequence[RecommendationRequest],
) -> PortfolioReport:
    """Optimize every customer request and aggregate the savings."""
    if not requests:
        raise BrokerError("portfolio needs at least one request")
    outcomes = []
    # One session for the whole portfolio: customers with matching
    # contracts and base systems share cached engines.
    with broker.session() as session:
        for request in requests:
            report = session.recommend(request)
            best_placement = report.best
            outcomes.append(
                CustomerOutcome(
                    request_name=request.system_name,
                    provider_name=best_placement.provider_name,
                    recommended_label=best_placement.result.best.label,
                    recommended_tco=best_placement.result.best.tco.total,
                    ad_hoc_tco=_ad_hoc_tco(best_placement),
                )
            )
    return PortfolioReport(outcomes=tuple(outcomes))
