"""Building provider-specific technology registries.

The broker knows each provider's "rate-carded price ``C_HA``" (§II-C
item 3).  This module turns a provider's rate card — HA add-on prices
and labor-hour norms — plus failover-time estimates into the
:class:`TechnologyRegistry` the optimizer enumerates over.
"""

from __future__ import annotations

from typing import Mapping

from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.multipath import StorageMultipath
from repro.catalog.network import BGPDualCircuit, DualGateway
from repro.catalog.os_cluster import OSCluster
from repro.catalog.raid import RAID1
from repro.catalog.registry import TechnologyRegistry
from repro.catalog.sds import SDSReplication
from repro.cloud.provider import CloudProvider

#: Fallback failover minutes per component kind when the caller supplies
#: no estimate (values in line with the case-study technologies).
_DEFAULT_FAILOVER = {"vm": 10.0, "volume": 1.0, "gateway": 2.0}


def registry_for_provider(
    provider: CloudProvider,
    failover_minutes: Mapping[str, float] | None = None,
    extended: bool = False,
) -> TechnologyRegistry:
    """Build the HA choice set priced from a provider's rate card.

    ``failover_minutes`` maps component kinds (``"vm"``, ``"volume"``,
    ``"gateway"``) to the broker's ``t̂`` estimates; missing kinds fall
    back to catalog defaults.  With ``extended=True`` the §V future-work
    technologies are included, widening each layer's choice set.
    """
    failover = dict(_DEFAULT_FAILOVER)
    if failover_minutes:
        failover.update(failover_minutes)
    card = provider.rate_card

    registry = TechnologyRegistry()
    registry.register(
        HypervisorHA(
            standby_nodes=1,
            failover_minutes=failover["vm"],
            monthly_license_per_node=card.addon("hypervisor-license-per-node", 0.0),
            monthly_labor_hours=card.labor_hours("hypervisor"),
        )
    )
    registry.register(
        RAID1(
            failover_minutes=failover["volume"],
            monthly_controller_cost=card.addon("raid-controller", 0.0),
            monthly_labor_hours=card.labor_hours("raid"),
        )
    )
    registry.register(
        DualGateway(
            failover_minutes=failover["gateway"],
            monthly_vip_cost=card.addon("gateway-vip", 0.0),
            monthly_labor_hours=card.labor_hours("gateway"),
        )
    )
    if extended:
        registry.register(
            HypervisorHA(
                standby_nodes=2,
                failover_minutes=failover["vm"],
                monthly_license_per_node=card.addon("hypervisor-license-per-node", 0.0),
                monthly_labor_hours=card.labor_hours("hypervisor") * 1.5,
            )
        )
        registry.register(
            OSCluster(
                standby_nodes=1,
                failover_minutes=failover["vm"] * 1.5,
                monthly_support_per_node=card.addon("hypervisor-license-per-node", 0.0) * 0.6,
                monthly_labor_hours=card.labor_hours("os-cluster"),
            )
        )
        registry.register(
            SDSReplication(
                replica_count=3,
                failover_minutes=failover["volume"] * 0.5,
                monthly_software_cost=card.addon("sds-software", 0.0),
                monthly_labor_hours=card.labor_hours("sds"),
            )
        )
        registry.register(
            StorageMultipath(
                failover_minutes=failover["volume"] * 0.1,
                monthly_path_cost=card.addon("multipath-port", 0.0),
                monthly_labor_hours=card.labor_hours("multipath"),
            )
        )
        registry.register(
            BGPDualCircuit(
                failover_minutes=failover["gateway"] * 1.5,
                monthly_circuit_cost=card.addon("bgp-circuit", 0.0),
                monthly_labor_hours=card.labor_hours("bgp"),
            )
        )
    return registry
