"""The broker's observation store.

The broker "determines and maintains a database of the ``P_i`` and
``f_i`` across IaaS components across clouds [and] the ``t_i`` for
various components" (§II-C).  :class:`TelemetryStore` is that database:
it tracks *exposure* (how many component-minutes were observed) and
*events* (failures, repair durations, failover latencies), and derives
the estimates:

- ``P̂`` = observed down minutes / observed exposure minutes;
- ``f̂`` = observed failures / observed exposure years;
- ``t̂`` = mean observed failover minutes.

The paper's §IV notes short-term skews "smooth out over the long term";
experiment E5 measures exactly that convergence.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.errors import InsufficientTelemetryError, ValidationError
from repro.units import MINUTES_PER_YEAR

#: Key of one observed component class: (provider name, component kind).
ComponentKey = tuple[str, str]

#: Current snapshot format version (shared with :mod:`repro.broker.persistence`).
SNAPSHOT_VERSION = 1


@dataclass
class _ComponentStats:
    """Accumulated observations for one (provider, kind) pair."""

    exposure_minutes: float = 0.0
    down_minutes: float = 0.0
    failures: int = 0
    failover_samples: list[float] = field(default_factory=list)


class TelemetryStore:
    """Accumulates observations and answers estimate queries."""

    def __init__(self) -> None:
        self._stats: dict[ComponentKey, _ComponentStats] = {}

    # -- recording ---------------------------------------------------------

    def register_exposure(
        self,
        provider: str,
        component_kind: str,
        node_count: int,
        horizon_minutes: float,
    ) -> None:
        """Record that ``node_count`` components were watched for a span.

        Exposure is the denominator of both ``P̂`` and ``f̂``; ingesting
        events without registering exposure is rejected at query time.
        """
        if node_count < 1:
            raise ValidationError(f"node_count must be >= 1, got {node_count!r}")
        if horizon_minutes <= 0.0:
            raise ValidationError(
                f"horizon_minutes must be > 0, got {horizon_minutes!r}"
            )
        stats = self._stats.setdefault((provider, component_kind), _ComponentStats())
        stats.exposure_minutes += node_count * horizon_minutes

    def record_failure(self, provider: str, component_kind: str) -> None:
        """Count one component failure."""
        stats = self._stats.setdefault((provider, component_kind), _ComponentStats())
        stats.failures += 1

    def record_outage(
        self, provider: str, component_kind: str, down_minutes: float
    ) -> None:
        """Record the duration of a completed outage."""
        if down_minutes < 0.0:
            raise ValidationError(
                f"down_minutes must be >= 0, got {down_minutes!r}"
            )
        stats = self._stats.setdefault((provider, component_kind), _ComponentStats())
        stats.down_minutes += down_minutes

    def record_failover(
        self, provider: str, component_kind: str, failover_minutes: float
    ) -> None:
        """Record one observed failover latency."""
        if failover_minutes < 0.0:
            raise ValidationError(
                f"failover_minutes must be >= 0, got {failover_minutes!r}"
            )
        stats = self._stats.setdefault((provider, component_kind), _ComponentStats())
        stats.failover_samples.append(failover_minutes)

    def ingest(self, events: Iterable[ResourceEvent]) -> int:
        """Consume a fault-injector event stream; returns events read.

        FAILURE events count failures; REPAIR events carry the outage
        duration; FAILOVER events carry takeover latencies.
        """
        count = 0
        for event in events:
            count += 1
            if event.kind is ResourceEventKind.FAILURE:
                self.record_failure(event.provider, event.component_kind)
            elif event.kind is ResourceEventKind.REPAIR:
                self.record_outage(
                    event.provider, event.component_kind, event.duration_minutes
                )
            elif event.kind is ResourceEventKind.FAILOVER:
                self.record_failover(
                    event.provider, event.component_kind, event.duration_minutes
                )
            else:  # pragma: no cover - exhaustive enum guard
                raise ValidationError(f"unknown event kind {event.kind!r}")
        return count

    # -- snapshots and merging ---------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """This store's full state as a versioned, JSON-safe document.

        The snapshot is a deep copy: later recording on the store does
        not mutate it, so a snapshot taken by one thread can be merged
        or serialized by another without coordination.  The format is
        the :mod:`repro.broker.persistence` on-disk format.
        """
        components = []
        for (provider, kind), stats in sorted(self._stats.items()):
            components.append(
                {
                    "provider": provider,
                    "component_kind": kind,
                    "exposure_minutes": stats.exposure_minutes,
                    "down_minutes": stats.down_minutes,
                    "failures": stats.failures,
                    "failover_samples": list(stats.failover_samples),
                }
            )
        return {"snapshot_version": SNAPSHOT_VERSION, "components": components}

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, Any]) -> "TelemetryStore":
        """Rebuild a store from :meth:`snapshot` output (exact round-trip)."""
        version = payload.get("snapshot_version")
        if version != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported telemetry snapshot_version {version!r}; "
                f"this library reads version {SNAPSHOT_VERSION}"
            )
        store = cls()
        for entry in payload.get("components", []):
            stats = _ComponentStats(
                exposure_minutes=float(entry["exposure_minutes"]),
                down_minutes=float(entry["down_minutes"]),
                failures=int(entry["failures"]),
                failover_samples=[float(x) for x in entry["failover_samples"]],
            )
            if (
                stats.exposure_minutes < 0
                or stats.down_minutes < 0
                or stats.failures < 0
            ):
                raise ValidationError(
                    f"negative statistics in snapshot entry {entry!r}"
                )
            store._stats[(entry["provider"], entry["component_kind"])] = stats
        return store

    def copy(self) -> "TelemetryStore":
        """An independent deep copy of this store."""
        return TelemetryStore.from_snapshot(self.snapshot())

    def merge(self, other: "TelemetryStore") -> "TelemetryStore":
        """Fold another store's observations into this one; returns self.

        Per component class the counters add and the failover samples
        concatenate, so merging N disjoint partitions of an event stream
        reproduces single-store ingestion: a key absent from ``self``
        adopts the other store's accumulation bit-for-bit (``0.0 + x``
        is exact), and shared keys add their sums.  Merging stores that
        *split* one key's events regroups float additions, so estimates
        there agree only to rounding (see the associativity property
        tests).
        """
        for key, theirs in other._stats.items():
            mine = self._stats.setdefault(key, _ComponentStats())
            mine.exposure_minutes += theirs.exposure_minutes
            mine.down_minutes += theirs.down_minutes
            mine.failures += theirs.failures
            mine.failover_samples.extend(theirs.failover_samples)
        return self

    def adopt(self, other: "TelemetryStore") -> None:
        """Atomically replace this store's contents with ``other``'s.

        Publication is a single dict-reference assignment, so concurrent
        readers (estimate queries from serving threads) observe either
        the old state or the new state, never a partial merge — the
        lock-free hand-off the sharded ingestion pipeline relies on.
        ``other`` must not be mutated afterwards (the dict is shared,
        not copied).
        """
        self._stats = other._stats

    # -- queries -----------------------------------------------------------

    def observed_components(self) -> tuple[ComponentKey, ...]:
        """All (provider, kind) pairs with any exposure or events."""
        return tuple(sorted(self._stats))

    def exposure_years(self, provider: str, component_kind: str) -> float:
        """Observed component-years for a pair (0 when never watched)."""
        stats = self._stats.get((provider, component_kind))
        if stats is None:
            return 0.0
        return stats.exposure_minutes / MINUTES_PER_YEAR

    def down_probability(self, provider: str, component_kind: str) -> float:
        """``P̂``: observed fraction of exposure spent down."""
        stats = self._require(provider, component_kind)
        return min(stats.down_minutes / stats.exposure_minutes, 1.0)

    def failures_per_year(self, provider: str, component_kind: str) -> float:
        """``f̂``: observed failures per component-year."""
        stats = self._require(provider, component_kind)
        return stats.failures / (stats.exposure_minutes / MINUTES_PER_YEAR)

    def failover_minutes(self, provider: str, component_kind: str) -> float:
        """``t̂``: mean observed failover latency.

        Requires at least one failover observation.
        """
        stats = self._require(provider, component_kind)
        if not stats.failover_samples:
            raise InsufficientTelemetryError(
                f"no failover observations for {component_kind!r} on "
                f"{provider!r}; cannot estimate t"
            )
        return sum(stats.failover_samples) / len(stats.failover_samples)

    def failover_minutes_std(self, provider: str, component_kind: str) -> float:
        """Sample standard deviation of observed failover latencies.

        0 with fewer than two samples (no spread measurable yet).
        """
        stats = self._require(provider, component_kind)
        samples = stats.failover_samples
        if len(samples) < 2:
            return 0.0
        mean = sum(samples) / len(samples)
        variance = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
        return variance**0.5

    def failure_count(self, provider: str, component_kind: str) -> int:
        """Raw failure count (useful as a sample-size indicator)."""
        stats = self._stats.get((provider, component_kind))
        return 0 if stats is None else stats.failures

    def _require(self, provider: str, component_kind: str) -> _ComponentStats:
        stats = self._stats.get((provider, component_kind))
        if stats is None or stats.exposure_minutes <= 0.0:
            raise InsufficientTelemetryError(
                f"no exposure recorded for component {component_kind!r} on "
                f"provider {provider!r}; register_exposure() first"
            )
        return stats
