"""The broker's reliability knowledge base.

Wraps the raw telemetry store with the query the optimizer actually
needs: *"give me a node spec for component kind X on provider Y"*.
Estimates carry their sample sizes so callers can reason about
confidence, and a minimum-failures threshold guards against
recommending architectures off two data points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.telemetry import TelemetryStore
from repro.errors import InsufficientTelemetryError
from repro.topology.node import NodeSpec


@dataclass(frozen=True)
class ReliabilityEstimate:
    """A ``(P̂, f̂, t̂)`` triple with its provenance and precision.

    Standard errors use documented first-order approximations:

    - ``f̂``: Poisson counts — ``stderr = sqrt(n) / exposure_years``;
    - ``P̂``: total downtime is a sum of ``n`` outage durations with
      coefficient of variation ~1 each (exponential outages), so
      ``stderr ≈ P̂ / sqrt(n)``;
    - ``t̂``: sample mean — ``stderr = sample_std / sqrt(n)``.
    """

    provider: str
    component_kind: str
    down_probability: float
    failures_per_year: float
    failover_minutes: float
    exposure_years: float
    failure_samples: int
    failover_minutes_std: float = 0.0

    @property
    def down_probability_stderr(self) -> float:
        """Approximate standard error of ``P̂``."""
        if self.failure_samples == 0:
            return 0.0
        return self.down_probability / self.failure_samples**0.5

    @property
    def failures_per_year_stderr(self) -> float:
        """Poisson standard error of ``f̂``."""
        if self.exposure_years <= 0.0:
            return 0.0
        return self.failure_samples**0.5 / self.exposure_years

    @property
    def failover_minutes_stderr(self) -> float:
        """Standard error of the mean failover latency."""
        if self.failure_samples == 0:
            return 0.0
        return self.failover_minutes_std / self.failure_samples**0.5

    def input_uncertainty(self):
        """This estimate as a per-cluster input-uncertainty record."""
        from repro.availability.uncertainty import ClusterInputUncertainty

        return ClusterInputUncertainty(
            sigma_down_probability=self.down_probability_stderr,
            sigma_failures_per_year=self.failures_per_year_stderr,
            sigma_failover_minutes=self.failover_minutes_stderr,
        )

    def describe(self) -> str:
        """E.g. ``metalcloud/volume: P=0.0149 f=5.1/yr t=1.0m (n=255, 50.0 comp-yrs)``."""
        return (
            f"{self.provider}/{self.component_kind}: "
            f"P={self.down_probability:.5f} "
            f"f={self.failures_per_year:.2f}/yr "
            f"t={self.failover_minutes:.2f}m "
            f"(n={self.failure_samples}, {self.exposure_years:.1f} comp-yrs)"
        )


class KnowledgeBase:
    """Estimate queries over a telemetry store."""

    def __init__(self, telemetry: TelemetryStore, min_failure_samples: int = 5) -> None:
        if min_failure_samples < 1:
            raise InsufficientTelemetryError(
                f"min_failure_samples must be >= 1, got {min_failure_samples!r}"
            )
        self.telemetry = telemetry
        self.min_failure_samples = min_failure_samples

    def estimate(self, provider: str, component_kind: str) -> ReliabilityEstimate:
        """The broker's best current estimate for one component class.

        Raises :class:`InsufficientTelemetryError` when the store has no
        exposure or fewer failures than the confidence threshold.
        """
        samples = self.telemetry.failure_count(provider, component_kind)
        if samples < self.min_failure_samples:
            raise InsufficientTelemetryError(
                f"only {samples} failure observations for "
                f"{component_kind!r} on {provider!r}; need at least "
                f"{self.min_failure_samples} for a recommendation"
            )
        return ReliabilityEstimate(
            provider=provider,
            component_kind=component_kind,
            down_probability=self.telemetry.down_probability(provider, component_kind),
            failures_per_year=self.telemetry.failures_per_year(provider, component_kind),
            failover_minutes=self.telemetry.failover_minutes(provider, component_kind),
            exposure_years=self.telemetry.exposure_years(provider, component_kind),
            failure_samples=samples,
            failover_minutes_std=self.telemetry.failover_minutes_std(
                provider, component_kind
            ),
        )

    def node_spec(
        self,
        provider: str,
        component_kind: str,
        monthly_cost: float,
    ) -> NodeSpec:
        """Materialize a topology node from the broker's estimates."""
        estimate = self.estimate(provider, component_kind)
        return NodeSpec(
            kind=component_kind,
            down_probability=estimate.down_probability,
            failures_per_year=estimate.failures_per_year,
            monthly_cost=monthly_cost,
        )

    def describe(self) -> str:
        """Every estimate the store can currently support, one per line."""
        lines = ["Broker knowledge base:"]
        for provider, kind in self.telemetry.observed_components():
            try:
                lines.append(f"  {self.estimate(provider, kind).describe()}")
            except InsufficientTelemetryError:
                count = self.telemetry.failure_count(provider, kind)
                lines.append(
                    f"  {provider}/{kind}: insufficient data ({count} failures)"
                )
        return "\n".join(lines)
