"""Rendering option tables the way the paper's figures present them.

``render_option_table`` reproduces the per-option rows of Figures 3-9;
``render_summary`` reproduces Figure 10's as-is vs recommended
comparison with the savings percentage.  Both return plain strings so
the CLI, examples and benchmarks share one formatter.
"""

from __future__ import annotations

from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.units import format_money


def render_option_table(result: OptimizationResult, title: str = "Solution options") -> str:
    """ASCII table: one row per evaluated option (Figures 3-9)."""
    header = (
        f"{'#':>3} {'HA configuration':<34} {'U_s %':>9} "
        f"{'C_HA/mo':>12} {'penalty/mo':>12} {'TCO/mo':>12} {'SLA':>6}"
    )
    rows = [title, header, "-" * len(header)]
    for option in result.options:
        clustered = "+".join(option.clustered_components) or "(none)"
        rows.append(
            f"{option.option_id:>3} {clustered:<34} "
            f"{option.tco.uptime_probability * 100:>9.4f} "
            f"{format_money(option.tco.ha_cost):>12} "
            f"{format_money(option.tco.expected_penalty):>12} "
            f"{format_money(option.tco.total):>12} "
            f"{'meets' if option.meets_sla else 'slips':>6}"
        )
    if result.pruned:
        rows.append(
            f"({result.pruned} option(s) pruned without evaluation; "
            f"{result.evaluations}/{result.space_size} evaluated)"
        )
    return "\n".join(rows)


def render_summary(
    result: OptimizationResult,
    as_is: EvaluatedOption,
    title: str = "Summary of results & resulting cost efficiency",
) -> str:
    """Figure 10: as-is strategy vs the framework's recommendation."""
    best = result.best
    min_penalty = result.min_penalty_option
    savings = result.savings_vs(as_is)
    lines = [
        title,
        f"  as-is strategy:        {as_is.label:<36} "
        f"TCO {format_money(as_is.tco.total)}/mo",
        f"  recommended (min TCO): {best.label:<36} "
        f"TCO {format_money(best.tco.total)}/mo",
        f"  min-penalty option:    {min_penalty.label:<36} "
        f"TCO {format_money(min_penalty.tco.total)}/mo",
        f"  savings vs as-is:      {savings * 100:.1f}%",
    ]
    return "\n".join(lines)
