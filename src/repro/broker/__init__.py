"""The brokered service (§II-C): the paper's deployment vehicle.

A hybrid cloud broker sits above providers and customers, so it can

1. maintain a telemetry database of ``P_i``, ``f_i`` and ``t_i`` across
   IaaS components and clouds (:mod:`~repro.broker.telemetry`,
   :mod:`~repro.broker.knowledge_base`);
2. know each provider's rate-carded HA prices
   (:mod:`~repro.broker.ratecard`);
3. accept a base architecture + contract and return the
   uptime-optimized HA recommendation (:mod:`~repro.broker.service`),
   optionally comparing placements across providers
   (:mod:`~repro.broker.marketplace`);
4. serve many customers through the v2 request/response protocol —
   request/report envelopes (:mod:`~repro.broker.envelope`) and
   sessioned, batched, streaming recommendation with a cross-request
   engine cache (:mod:`~repro.broker.api`).
"""

from repro.broker.api import BrokerSession, EngineCache
from repro.broker.envelope import (
    ProgressEvent,
    RecommendEnvelope,
    ReportEnvelope,
)
from repro.broker.knowledge_base import KnowledgeBase, ReliabilityEstimate
from repro.broker.marketplace import MarketplaceComparison, compare_providers
from repro.broker.persistence import load_telemetry, save_telemetry
from repro.broker.portfolio import CustomerOutcome, PortfolioReport, optimize_portfolio
from repro.broker.ratecard import registry_for_provider
from repro.broker.reports import render_option_table, render_summary
from repro.broker.request import ClusterRequirement, RecommendationRequest
from repro.broker.service import BrokerService, ProviderRecommendation, RecommendationReport
from repro.broker.telemetry import TelemetryStore

__all__ = [
    "BrokerService",
    "BrokerSession",
    "ClusterRequirement",
    "EngineCache",
    "ProgressEvent",
    "RecommendEnvelope",
    "ReportEnvelope",
    "CustomerOutcome",
    "PortfolioReport",
    "optimize_portfolio",
    "KnowledgeBase",
    "MarketplaceComparison",
    "ProviderRecommendation",
    "RecommendationReport",
    "RecommendationRequest",
    "ReliabilityEstimate",
    "TelemetryStore",
    "compare_providers",
    "load_telemetry",
    "registry_for_provider",
    "save_telemetry",
    "render_option_table",
    "render_summary",
]
