"""Seedable randomness helpers.

All stochastic components in this library (the Monte Carlo simulator, the
fault injector, the workload generators) take an explicit seed or
:class:`random.Random` instance so that every experiment is reproducible.
This module centralises the convention.
"""

from __future__ import annotations

import random

#: Seed used by examples and benchmarks unless overridden.
DEFAULT_SEED = 20170612


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` for the given seed.

    Accepts an existing ``Random`` (returned unchanged, so sub-components
    can share one stream), an integer seed, or ``None`` for the library
    default seed.  The default is a fixed constant — *not* entropy — so
    that two runs of any example produce identical output.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child stream from ``rng``.

    Used when a component needs its own stream whose draws do not perturb
    the parent's sequence (e.g. one stream per simulated node).
    """
    return random.Random(rng.getrandbits(64))
