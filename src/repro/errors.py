"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-types are grouped by
the subsystem that raises them.
"""

from __future__ import annotations

from typing import Iterable


def unknown_name_message(
    kind: str,
    name: object,
    known: Iterable[object],
    *,
    label: str = "known",
) -> str:
    """One consistent message shape for failed name lookups.

    Every "unknown X" error across the library (providers, report
    entries, jobs, SKUs) funnels through here so callers see the same
    ``unknown <kind> <name>; <label>: [...]`` text with the valid names
    listed — and tests can match on one format.
    """
    return f"unknown {kind} {name!r}; {label}: {sorted(known, key=repr)}"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError, ValueError):
    """A model object was constructed with invalid parameters.

    Raised eagerly at construction time so that bad inputs fail close to
    their source rather than deep inside the math.
    """


class TopologyError(ValidationError):
    """A system topology is structurally invalid (e.g. no clusters)."""


class CatalogError(ReproError, KeyError):
    """An HA technology lookup failed (unknown name or wrong layer)."""


class OptimizerError(ReproError):
    """The optimizer was asked to solve an ill-posed problem."""


class EngineBackendError(OptimizerError):
    """An evaluation backend's worker pool failed mid-stream.

    Raised by the engine's thread/process backends when a worker dies or
    raises a non-library exception while evaluating a chunk — callers
    (and the server's error mapper) see one structured engine error
    instead of a hung pool or a raw concurrent.futures traceback.
    """


class CloudError(ReproError):
    """A simulated cloud-provider operation failed."""


class ProvisioningError(CloudError):
    """A resource could not be provisioned (capacity, bad flavor, ...)."""


class ResourceNotFoundError(CloudError, KeyError):
    """A resource id does not exist with this provider."""


class BrokerError(ReproError):
    """The brokered service could not fulfil a request."""


class UnknownNameError(BrokerError, KeyError):
    """A lookup by name failed (provider, report entry, job, ...).

    Messages come from :func:`unknown_name_message`; the dedicated type
    lets wire layers map missing ids to a 404 without string matching.
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs the message (adds quotes); keep it plain.
        return Exception.__str__(self)


class InsufficientTelemetryError(BrokerError):
    """The broker has no observations for a requested component class."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
