"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e . --no-use-pep517`` (the legacy editable path)
works on machines whose setuptools cannot build PEP 517 wheels offline.
"""

from setuptools import setup

setup()
