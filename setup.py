"""Setup shim for environments without the ``wheel`` package.

Kept deliberately minimal so that ``pip install -e . --no-use-pep517``
(the legacy editable path) works on machines whose setuptools cannot
build PEP 517 wheels offline.

The ``vector`` extra pulls in numpy for the vectorized evaluation
backend (``--backend vector`` / ``REPRO_BACKEND=vector``); without it
the backend degrades to serial evaluation with a RuntimeWarning.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={
        "vector": ["numpy"],
    },
)
