#!/usr/bin/env python
"""A broker's book of business: savings at portfolio scale.

The paper's pitch is that ad-hoc HA wastes money across *every* customer
a broker serves.  This example runs five customers with different
contracts through the brokered optimization (placement included), adds
the uncertainty view — how confident is the broker in each
recommendation given its current telemetry? — and totals the savings.

Run: ``python examples/broker_portfolio.py``
"""

from repro.availability.uncertainty import (
    propagate_uptime_uncertainty,
    recommendation_confidence,
    tco_band,
)
from repro.broker.portfolio import optimize_portfolio
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.sla.contract import Contract

broker = BrokerService(all_providers())
print("Accumulating 6 synthetic years of telemetry per provider...")
broker.observe_all(years=6.0, seed=424242)

customers = [
    three_tier_request(Contract.linear(98.0, 100.0), system_name="retailer"),
    three_tier_request(Contract.linear(99.5, 500.0), system_name="bank", compute_nodes=4),
    three_tier_request(Contract.linear(95.0, 25.0), system_name="batch-shop"),
    three_tier_request(Contract.linear(99.0, 250.0), system_name="saas-vendor"),
    three_tier_request(Contract.linear(97.0, 60.0), system_name="intranet"),
]

report = optimize_portfolio(broker, customers)
print()
print(report.describe())

# Confidence view for the first customer: does the broker know enough?
request = customers[0]
placement = broker.recommend(request).best
result = placement.result
kb = broker.knowledge_base
uncertainties = {
    requirement.name: kb.estimate(
        placement.provider_name, requirement.component_kind
    ).input_uncertainty()
    for requirement in request.clusters
}
ranked = sorted(result.options, key=lambda option: option.tco.total)
best, runner_up = ranked[0], ranked[1]


def tco_sigma(option):
    uncertainty = propagate_uptime_uncertainty(option.system, uncertainties)
    return tco_band(option.tco.ha_cost, request.contract, uncertainty).spread / 4.0


confidence = recommendation_confidence(
    best.tco.total, tco_sigma(best), runner_up.tco.total, tco_sigma(runner_up)
)
print(
    f"\nConfidence check ({request.system_name!r} on "
    f"{placement.provider_name}): Pr[{best.label} beats "
    f"{runner_up.label}] = {confidence * 100:.1f}% given the telemetry "
    "collected so far."
)
print(
    "A broker below its confidence bar keeps observing before "
    "committing — the operational answer to the paper's §IV concern "
    "about estimate skew."
)
