#!/usr/bin/env python
"""Brownfield advice: migrating an ad-hoc deployment one move at a time.

The paper's client already ran the over-engineered option #8 when the
framework was applied.  Real migrations happen one change window at a
time.  This example starts from the deployed configuration and follows
the advisor's best single-cluster move until no move pays off — landing
exactly on the paper's recommended option #3 — then shows how a one-off
migration cost changes the advice.

Run: ``python examples/upgrade_advisor.py``
"""

from repro.optimizer.advisor import advise_upgrades
from repro.workloads.case_study import case_study_problem

problem = case_study_problem()
deployed = ("hypervisor-n+1", "raid-1", "dual-gateway")  # the as-is option #8

print("Greedy migration from the deployed (ad-hoc) configuration:\n")
current = deployed
step = 1
while True:
    advice = advise_upgrades(problem, current)
    print(f"Step {step}: {advice.current.label} "
          f"(TCO ${advice.current.tco.total:,.2f}/mo)")
    for move in advice.moves:
        marker = "  => " if move.pays_off else "     "
        print(f"{marker}{move.describe()}")
    best = advice.best_move
    if best is None:
        print("  no single move pays off — migration complete\n")
        break
    current = best.option.choice_names
    step += 1

final = advise_upgrades(problem, current).current
print(f"Final configuration: {final.label} — the paper's recommendation.")
print(
    f"Monthly run rate fell from $1,040.00 to ${final.tco.total:,.2f} "
    "across the migration."
)

# Migration friction: a $6,000 one-off cost amortized over a year.
print("\nSame starting point with $6,000/move migration cost (12-month amortization):\n")
advice = advise_upgrades(
    problem, deployed, migration_cost=6000.0, amortization_months=12
)
for move in advice.moves:
    marker = "  => " if move.pays_off else "     "
    print(f"{marker}{move.describe()}  (net {move.total_monthly_delta:+,.2f}/mo)")
best = advice.best_move
print(
    f"\nAdvice: {'apply ' + best.describe() if best else 'stay put this year'} — "
    "friction changes which moves clear the bar."
)
