#!/usr/bin/env python
"""The paper's §III client case study, end to end.

Reproduces Figures 3-10: the 8 solution options of the three-tier
SoftLayer deployment, the pruned search clipping option #8, the
recommendation (option #3, HA for storage only), the minimum-penalty
alternative (option #5), and the ≈62% savings against the deployed
ad-hoc strategy (option #8).

Run: ``python examples/case_study_softlayer.py``
"""

from repro.broker.reports import render_option_table, render_summary
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pareto import pareto_frontier
from repro.optimizer.pruned import pruned_optimize
from repro.workloads.case_study import AS_IS_OPTION_ID, case_study_problem

problem = case_study_problem()

print("Base architecture (customer input):")
print(problem.bare_system.describe())
print()
print(f"Contract: {problem.contract.describe()}")
print(f"Labor:    {problem.labor_rate.describe()}")
print()

# Full enumeration — the data behind Figures 3-9.
result = brute_force_optimize(problem)
print(render_option_table(result, title="All 2^3 solution options (Figures 3-9):"))
print()

# Figure 10 summary: the deployed ad-hoc strategy vs the recommendation.
print(render_summary(result, result.option(AS_IS_OPTION_ID)))
print()

# §III-C: the pruned search reaches the same optimum with less work.
pruned = pruned_optimize(problem)
clipped = sorted(
    set(range(1, 9)) - {option.option_id for option in pruned.options}
)
print(
    f"Pruned search evaluated {pruned.evaluations}/{pruned.space_size} options "
    f"and clipped {', '.join(f'#{i}' for i in clipped)} — the paper's example "
    "of clipping #8 after #5 meets the SLA."
)
print()

# Bonus: the cost/uptime Pareto frontier a customer could choose from.
print("Cost/uptime Pareto frontier:")
for option in pareto_frontier(result.options):
    print(
        f"  {option.label:<36} C_HA ${option.tco.ha_cost:>9,.2f}/mo   "
        f"U_s {option.tco.uptime_probability * 100:.4f}%"
    )
