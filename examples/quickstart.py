#!/usr/bin/env python
"""Quickstart: model a system, pick a contract, get a recommendation.

This walks the public API end to end in ~40 lines:

1. describe a base architecture (a serial chain of clusters);
2. describe the contract (uptime SLA + slippage penalty);
3. enumerate every HA-enabled variant and pick the minimum-TCO option.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Contract,
    LaborRate,
    NodeSpec,
    OptimizationProblem,
    TopologyBuilder,
    case_study_registry,
    evaluate_availability,
    pruned_optimize,
)

# 1. The base architecture: three serial clusters.  Each node carries
#    its steady-state down probability P, failures/year f, and price.
system = (
    TopologyBuilder("my-three-tier")
    .compute("compute", NodeSpec("host", 0.0025, 6.0, monthly_cost=330.0), nodes=3)
    .storage("storage", NodeSpec("volume", 0.015, 5.0, monthly_cost=170.0), nodes=1)
    .network("network", NodeSpec("gateway", 0.014, 4.0, monthly_cost=190.0), nodes=1)
    .build()
)
print(system.describe())

# How available is the bare system?  (Eq. 1-4.)
report = evaluate_availability(system)
print(f"\nBare system: {report.budget.describe()}")

# 2. The contract: 98% uptime, $100 per hour of slippage, $30/h labor.
problem = OptimizationProblem(
    base_system=system,
    registry=case_study_registry(
        hypervisor_license_per_node=12.5,
        hypervisor_labor_hours=4.0,
        raid_controller_cost=30.0,
        raid_labor_hours=2.0,
        gateway_vip_cost=30.0,
        gateway_labor_hours=2.0,
    ),
    contract=Contract.linear(98.0, 100.0),
    labor_rate=LaborRate(30.0),
)

# 3. Enumerate all k^n HA permutations (with §III-C pruning) and pick
#    the minimum-TCO option (Eq. 5-6).
result = pruned_optimize(problem)
print()
print(result.describe())

best = result.best
print(
    f"\nDeploy {best.label}: expected uptime "
    f"{best.tco.uptime_probability * 100:.4f}%, "
    f"TCO ${best.tco.total:,.2f}/month "
    f"(HA ${best.tco.ha_cost:,.2f} + expected penalty "
    f"${best.tco.expected_penalty:,.2f})"
)
