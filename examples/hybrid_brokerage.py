#!/usr/bin/env python
"""Hybrid cloud brokerage: telemetry, knowledge base, marketplace.

The paper's framing (§II-C, Figure 2): a broker above several clouds
learns each provider's reliability from long-timeline observation, knows
their rate cards, and answers customer requests with an uptime-optimized
architecture *and* a placement.  This example:

1. registers three simulated providers (baseline / premium / budget);
2. accumulates six synthetic years of fleet telemetry per provider;
3. shows the learned knowledge base next to the ground truth;
4. runs one customer request through the marketplace.

Run: ``python examples/hybrid_brokerage.py``
"""

from repro.broker.marketplace import compare_providers
from repro.broker.reports import render_option_table
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.sla.contract import Contract

# 1-2. A broker that has been watching all three providers.
broker = BrokerService(all_providers())
print("Observing providers (6 synthetic years of fleet telemetry each)...")
events = broker.observe_all(years=6.0, seed=2017)
print(f"  ingested {events:,} events\n")

# 3. What the broker learned vs what is actually true.
print(broker.knowledge_base.describe())
print("\nGround truth for comparison:")
for name in sorted(broker.providers):
    provider = broker.provider(name)
    for kind in ("vm", "volume", "gateway"):
        p, f, t = provider.reliability.triple(kind)
        print(f"  {name}/{kind}: P={p:.5f} f={f:.2f}/yr t={t:.2f}m")
print()

# 4. A customer request: classic three-tier workload, 99% uptime at
#    $300/hour, open to the extended (future-work) HA catalog.
request = three_tier_request(
    Contract.linear(99.0, 300.0),
    system_name="customer-webshop",
    extended_catalog=True,
)
comparison = compare_providers(broker, request)
print(comparison.describe())
print()

winner = comparison.winner
print(render_option_table(
    winner.result,
    title=f"Winning provider ({winner.provider_name}) option table:",
))
print(
    f"\nPlacement: {winner.provider_name}, {winner.result.best.label}, "
    f"${winner.monthly_total:,.2f}/month all-in "
    f"(premium over runner-up avoided: "
    f"${comparison.premium_over_winner(comparison.ranked[1].provider_name):,.2f}/month)"
)
