#!/usr/bin/env python
"""Beyond the serial chain: reliability block diagrams.

The paper models systems as strictly serial (Figure 1) and lists
"multi-pathing" in its future work.  This example composes the RBD
extension: an edge tier feeding *two independent serving paths* (each a
serial app+storage stack), so the workload survives the loss of an
entire path.  It compares:

1. the classic serial chain (everything single-path);
2. the dual-path diagram with bare paths;
3. the dual-path diagram where one path additionally gets HA.

It then cross-checks the broker's priority list (importance analysis)
against where the availability actually moved.

Run: ``python examples/parallel_paths.py``
"""

from repro.availability.importance import importance_analysis
from repro.availability.rbd import block_availability, parallel_gain
from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.raid import RAID1
from repro.topology.blocks import leaf, parallel, serial
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec

edge = ClusterSpec("edge", Layer.NETWORK, NodeSpec("gateway", 0.006, 4.0, 180.0), 1)
app_a = ClusterSpec("app-a", Layer.COMPUTE, NodeSpec("host", 0.004, 6.0, 300.0), 2)
db_a = ClusterSpec("db-a", Layer.STORAGE, NodeSpec("volume", 0.012, 5.0, 160.0), 1)
app_b = ClusterSpec("app-b", Layer.COMPUTE, NodeSpec("host", 0.004, 6.0, 300.0), 2)
db_b = ClusterSpec("db-b", Layer.STORAGE, NodeSpec("volume", 0.012, 5.0, 160.0), 1)

# 1. Everything serial: one path, every element a single point of failure.
single_path = serial(leaf(edge), leaf(app_a), leaf(db_a))
print("1. single serial path:")
print(single_path.describe())
print(f"   availability = {block_availability(single_path):.6f}\n")

# 2. Dual path: the edge feeds either of two independent app+db stacks.
dual_path = serial(
    leaf(edge),
    parallel(
        serial(leaf(app_a), leaf(db_a)),
        serial(leaf(app_b), leaf(db_b)),
    ),
)
print("2. dual serving paths:")
print(dual_path.describe())
print(f"   availability  = {block_availability(dual_path):.6f}")
print(f"   parallel gain = {parallel_gain(dual_path):+.6f} "
      "(vs serializing the same clusters)\n")

# 3. HA inside one branch: cluster path A's app tier and mirror its db.
app_a_ha = HypervisorHA(standby_nodes=1, failover_minutes=8.0).apply(app_a)
db_a_ha = RAID1(failover_minutes=1.0).apply(db_a)
dual_path_ha = serial(
    leaf(edge),
    parallel(
        serial(leaf(app_a_ha), leaf(db_a_ha)),
        serial(leaf(app_b), leaf(db_b)),
    ),
)
print("3. dual paths, path A hardened (hypervisor HA + RAID-1):")
print(f"   availability = {block_availability(dual_path_ha):.6f}\n")

# The residual weak spot is now the shared edge — importance agrees.
flat = (
    TopologyBuilder("flat-for-importance")
    .network("edge", edge.node, nodes=1)
    .compute("app-a", app_a.node, nodes=2)
    .storage("db-a", db_a.node, nodes=1)
    .build()
)
print("Importance analysis of the single-path system (broker's priority list):")
print(importance_analysis(flat).describe())
print(
    "\nReading: parallel paths buy more than any single-cluster HA here, "
    "and once a path is redundant the shared edge dominates — exactly "
    "where the dual-gateway catalog entry applies next."
)
