#!/usr/bin/env python
"""Broker API v2: sessions, envelopes, batching and streaming.

The paper's broker (Figure 2) is a service with many customers, not a
function call.  This example drives the v2 protocol end to end:

1. opens a :class:`~repro.broker.api.BrokerSession` over an observed
   broker — the session owns the cross-request engine cache;
2. serves the same request cold and warm, showing the cache at work;
3. batches eight customer requests through ``recommend_many``;
4. streams one exhaustive sweep as progress events, with the option
   table never materialized;
5. round-trips a request/report pair through the JSON wire format.

Run: ``python examples/broker_session.py``
"""

import time

from repro.broker.envelope import RecommendEnvelope, ReportEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.sla.contract import Contract

# 1. An observed broker and a session over it.
broker = BrokerService(all_providers())
print("Observing providers (3 synthetic years of fleet telemetry each)...")
events = broker.observe_all(years=3.0, seed=2017)
print(f"  ingested {events:,} events\n")

request = three_tier_request(Contract.linear(98.0, 100.0))

with broker.session(max_workers=4) as session:
    # 2. Cold vs warm: the second call reuses every cached engine.
    start = time.perf_counter()
    cold = session.recommend(request)
    cold_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    warm = session.recommend(request)
    warm_ms = (time.perf_counter() - start) * 1e3
    assert warm.describe() == cold.describe()
    print(cold.describe())
    print(
        f"\ncold request {cold_ms:.2f} ms -> warm request {warm_ms:.2f} ms "
        f"({session.engine_cache.stats.describe()})\n"
    )

    # 3. A batch of customers with overlapping contracts.
    requests = [
        three_tier_request(Contract.linear(sla, penalty))
        for sla, penalty in [
            (98.0, 100.0), (98.0, 250.0), (99.0, 100.0), (98.0, 100.0),
            (99.0, 250.0), (98.0, 500.0), (98.0, 100.0), (99.5, 100.0),
        ]
    ]
    reports = session.recommend_many(requests)
    print(f"Batched {len(reports)} requests over the worker pool:")
    for batch_request, report in zip(requests, reports):
        best = report.best
        print(
            f"  SLA {batch_request.contract.sla.target_percent:5.1f}% -> "
            f"{best.provider_name:<10} {best.result.best.label}"
        )
    print(f"  {session.engine_cache.stats.describe()}\n")

    # 4. Streaming: distilled exhaustive sweep, option table never built.
    sweep = three_tier_request(
        Contract.linear(98.0, 100.0),
        providers=("metalcloud",),
        strategy="brute-force",
    )
    print("Streaming an exhaustive sweep on metalcloud:")
    for event in session.stream(sweep, progress_every=2):
        if event.kind == "progress":
            print(
                f"  progress: {event.detail['evaluated']}/"
                f"{event.detail['space_size']} candidates"
            )
        elif event.kind == "provider-completed":
            print(
                f"  {event.provider}: {event.detail['best']} "
                f"(${event.detail['monthly_total']:,.2f}/mo)"
            )

# 5. The wire format: what a remote customer would actually send.
envelope = RecommendEnvelope(request, request_id="customer-42")
with broker.session() as wire_session:
    report_envelope = wire_session.recommend_envelope(envelope)
line = report_envelope.to_json()
restored = ReportEnvelope.from_json(line)
print(
    f"\nWire round-trip: {len(line)} bytes of JSON; "
    f"place on {restored.best.provider_name} as {restored.best.best.label}"
)
