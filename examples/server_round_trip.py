#!/usr/bin/env python
"""The broker as a network service: serve, recommend, ingest, scrape.

The paper's broker is a wire-facing service with a telemetry pipeline
behind it (§II-C).  This example drives the whole serving layer
in-process:

1. starts the asyncio broker server on an ephemeral port (4 telemetry
   ingestion shards, periodic snapshot merges);
2. round-trips a :class:`RecommendEnvelope` over a real socket;
3. submits a job and polls it to completion;
4. ships a fault-injector trace through ``POST /v2/ingest`` and forces
   a snapshot merge into the serving store;
5. scrapes ``/metrics`` and reads the engine-cache and per-shard
   ingest counters back out of the Prometheus text.

Run: ``python examples/server_round_trip.py``
"""

from repro.broker.envelope import RecommendEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.faults import FaultInjector
from repro.cloud.providers import all_providers, metalcloud
from repro.server import ExposureRecord, ServerClient, start_in_thread
from repro.sla.contract import Contract
from repro.units import MINUTES_PER_YEAR

# 1. An observed broker, served over a real TCP socket.
broker = BrokerService(all_providers())
print("Observing providers (1 synthetic year of fleet telemetry each)...")
broker.observe_all(years=1.0, seed=2017)

with start_in_thread(broker, shards=4, merge_interval=0.1) as handle:
    client = ServerClient(handle.host, handle.port)
    print(f"broker server on {handle.url}: {client.health()['status']}\n")

    # 2. One synchronous recommend over the wire.
    request = three_tier_request(Contract.linear(98.0, 100.0))
    report = client.recommend(RecommendEnvelope(request, request_id="rt-1"))
    best = report.best
    print(
        f"POST /v2/recommend -> place on {best.provider_name} as "
        f"{best.best.label} (${best.monthly_total:,.2f}/mo)"
    )

    # 3. The job lifecycle: submit, poll, fetch the result.
    job_id = client.submit(RecommendEnvelope(request, request_id="rt-2"))
    job_report = client.result(job_id)
    print(
        f"POST /v2/jobs -> {job_id} -> {client.poll(job_id)}; "
        f"same placement: {job_report.best.provider_name}"
    )

    # 4. Fresh telemetry through the sharded ingestion pipeline.  Records
    # partition by (provider, component_kind), so each kind's stream
    # lands on exactly one shard, in order.
    provider = metalcloud()
    fleet = [provider.provision_vm("bm.small") for _ in range(8)]
    fleet += [provider.provision_volume("ssd.250", role="t") for _ in range(6)]
    fleet += [provider.provision_gateway("gw.1g", role="t") for _ in range(3)]
    events = FaultInjector(provider, seed=7).inject(
        fleet, horizon_minutes=MINUTES_PER_YEAR
    )
    records = [
        ExposureRecord("metalcloud", "vm", 8, MINUTES_PER_YEAR),
        ExposureRecord("metalcloud", "volume", 6, MINUTES_PER_YEAR),
        ExposureRecord("metalcloud", "gateway", 3, MINUTES_PER_YEAR),
    ]
    records.extend(events)
    ack = client.ingest(records)
    merged = client.flush()
    print(
        f"POST /v2/ingest -> routed {ack['routed']} records across "
        f"{ack['shards']} shards; merged {merged['merged']} into the "
        "serving store"
    )

    # 5. Prometheus metrics: cache behaviour and per-shard counters.
    samples = client.metrics()
    hits = samples[("repro_engine_cache_hits_total", ())]
    misses = samples[("repro_engine_cache_misses_total", ())]
    per_shard = [
        int(samples[("repro_ingest_events_total", (("shard", str(i)),))])
        for i in range(4)
    ]
    print(
        f"GET /metrics -> engine cache {int(hits)} hits / "
        f"{int(misses)} misses; ingest per shard: {per_shard}"
    )

print(
    f"\nServer round-trip: recommend + jobs + ingest + metrics over "
    f"one socket; {len(records)} telemetry records now serving"
)
