#!/usr/bin/env python
"""Expected vs realized penalties: why Eq. 5 under-budgets.

Eq. 5 prices slippage on the *expected* uptime, but contracts settle
monthly on *realized* downtime.  Because the penalty function
``max(0, downtime - allowance)`` is convex, the mean settled payout is
at least the payout of the mean (Jensen's inequality) — strictly more
whenever monthly downtime straddles the allowance.

This example settles 25 simulated years for three case-study options
and shows the gap, plus how penalty *caps* change the picture (capping
makes the clause concave beyond the cap, pulling realized costs back
toward — and potentially below — the naive expectation).

Run: ``python examples/sla_compliance.py``
"""

from repro.optimizer.brute_force import brute_force_optimize
from repro.sla.contract import Contract
from repro.sla.measurement import measure_compliance
from repro.sla.penalty import CappedPenalty, LinearPenalty
from repro.sla.sla import UptimeSLA
from repro.workloads.case_study import case_study_contract, case_study_problem

result = brute_force_optimize(case_study_problem())
contract = case_study_contract()

print("Settling 25 simulated years per option against the paper's contract")
print(f"({contract.describe()}):\n")

for option_id in (1, 3, 5, 8):
    option = result.option(option_id)
    report = measure_compliance(
        option.system, contract, years=25.0, seed=4000 + option_id
    )
    print(f"{option.label}")
    print(f"  Eq. 5 expected penalty : ${report.expected_monthly_penalty:>10,.2f}/mo")
    print(f"  mean realized penalty  : ${report.mean_realized_penalty:>10,.2f}/mo")
    print(f"  Jensen gap             : ${report.jensen_gap:>+10,.2f}/mo")
    print(
        f"  months breaching SLA   : {report.breach_fraction * 100:>9.1f}%   "
        f"worst month ${report.worst_month_penalty:,.2f}"
    )
    print()

print(
    "Note option #5: Eq. 5 predicts $0 (the SLA is met in expectation), "
    "yet rare bad months still settle for real money — the whole realized "
    "amount is invisible to the expectation-based TCO."
)

# A capped clause changes the calculus: the worst months stop hurting.
capped = Contract(
    sla=UptimeSLA(98.0),
    penalty=CappedPenalty(LinearPenalty(100.0), monthly_cap=400.0),
)
print(f"\nSame sweep under a capped clause ({capped.penalty.describe()}):\n")
for option_id in (1, 3):
    option = result.option(option_id)
    report = measure_compliance(
        option.system, capped, years=25.0, seed=5000 + option_id
    )
    print(
        f"{option.label:<20} expected ${report.expected_monthly_penalty:>8,.2f}  "
        f"realized ${report.mean_realized_penalty:>8,.2f}  "
        f"gap ${report.jensen_gap:>+8,.2f}"
    )

print(
    "\nWith the cap, heavy-downtime months saturate at $400, so realized "
    "costs can fall *below* the uncapped expectation — penalty shape, not "
    "just rate, belongs in the optimization."
)
