#!/usr/bin/env python
"""Where the recommendation flips: penalty and SLA sensitivity.

The paper notes (§III-B) that realized savings depend on how ad-hoc the
original HA engineering was, and (§IV) that the penalty is a
techno-commercial lever.  This example sweeps both contract knobs over
the case study and prints the crossover structure:

- at $0/hour the broker recommends no HA at all;
- at the paper's $100/hour, storage-only (option #3) wins;
- at punitive rates, the cheapest SLA-meeting option (#5) takes over —
  but never the all-HA option #8, which is always over-engineered here.

Run: ``python examples/penalty_sensitivity.py``
"""

from repro.cost.rates import LaborRate
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.sla.penalty import CappedPenalty, LinearPenalty, ServiceCreditPenalty
from repro.sla.sla import UptimeSLA
from repro.workloads.case_study import case_study_problem


def with_contract(contract: Contract) -> OptimizationProblem:
    base = case_study_problem()
    return OptimizationProblem(
        base_system=base.base_system,
        registry=base.registry,
        contract=contract,
        labor_rate=base.labor_rate,
    )


print("Penalty-rate sweep (SLA fixed at 98%):\n")
print(f"{'S_P/hour':>10}  {'recommended':<28} {'U_s':>10} {'TCO/mo':>12} {'savings vs #8':>14}")
for rate in (0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0):
    result = brute_force_optimize(with_contract(Contract.linear(98.0, rate)))
    best = result.best
    savings = result.savings_vs(result.option(8))
    print(
        f"${rate:>9,.0f}  {best.label:<28} "
        f"{best.tco.uptime_probability * 100:>9.4f}% "
        f"${best.tco.total:>11,.2f} {savings * 100:>13.1f}%"
    )

print("\nSLA-target sweep (penalty fixed at $100/hour):\n")
print(f"{'U_SLA':>8}  {'recommended':<28} {'U_s':>10} {'TCO/mo':>12}")
for target in (95.0, 96.0, 97.0, 98.0, 99.0, 99.5, 99.9):
    result = brute_force_optimize(with_contract(Contract.linear(target, 100.0)))
    best = result.best
    print(
        f"{target:>7g}%  {best.label:<28} "
        f"{best.tco.uptime_probability * 100:>9.4f}% ${best.tco.total:>11,.2f}"
    )

print("\nPenalty *shape* also matters (same 98% SLA):\n")
shapes = {
    "linear $100/h (paper)": LinearPenalty(100.0),
    "capped at $150/month": CappedPenalty(LinearPenalty(100.0), 150.0),
    "10%/25% service credits on $5k": ServiceCreditPenalty(
        5000.0, ((2.0, 0.10), (10.0, 0.25))
    ),
}
for label, clause in shapes.items():
    contract = Contract(sla=UptimeSLA(98.0), penalty=clause)
    result = brute_force_optimize(with_contract(contract))
    best = result.best
    print(f"  {label:<34} -> {best.label:<28} TCO ${best.tco.total:,.2f}/mo")

print(
    "\nReading: a cap low enough makes slipping cheap again (no HA wins); "
    "service credits quantize the risk, moving the crossover points."
)
