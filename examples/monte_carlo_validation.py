#!/usr/bin/env python
"""Validating the analytic model with discrete-event simulation.

Eq. 1-4 make two approximations (paper footnotes 2-3): breakdown and
failover downtime are treated as mutually exclusive, and overlapping
failover windows are ignored.  This example plays the real dynamics of
each case-study option through the Monte Carlo simulator and compares:

- analytic U_s vs the simulated 95% confidence interval;
- the B_s / F_s decomposition of both estimators;
- the measured overlap (the footnote-2 error term).

Run: ``python examples/monte_carlo_validation.py``
"""

from repro.optimizer.brute_force import brute_force_optimize
from repro.simulation.validation import validate_against_model
from repro.workloads.case_study import case_study_problem

result = brute_force_optimize(case_study_problem())

print("Analytic vs simulated availability, all 8 case-study options")
print("(100 replications x 1 simulated year each):\n")

header = (
    f"{'option':<34} {'analytic U_s':>13} {'simulated U_s':>14} "
    f"{'95% CI':>24} {'in CI':>6}"
)
print(header)
print("-" * len(header))

worst_gap = 0.0
for option in result.options:
    report = validate_against_model(
        option.system, replications=100, seed=9000 + option.option_id
    )
    low, high = report.simulated.availability_ci95
    inside = "yes" if report.analytic_inside_ci else "NO"
    print(
        f"{option.label:<34} {report.analytic_uptime:>13.6f} "
        f"{report.simulated_uptime:>14.6f} "
        f"[{low:.6f}, {high:.6f}]   {inside:>5}"
    )
    worst_gap = max(worst_gap, report.absolute_error)

print(f"\nworst |analytic - simulated| gap: {worst_gap:.2e}")

# Drill into the all-HA option, where failover activity is highest.
option8 = result.option(8)
report = validate_against_model(option8.system, replications=100, seed=8888)
print(f"\nDetailed decomposition for {option8.label}:")
print(report.describe())
print(
    "\nThe overlap fraction is the footnote-2 approximation error: time "
    "that was simultaneously a breakdown and a failover window, which the "
    "analytic model assumes away.  At realistic parameters it is orders "
    "of magnitude below the downtime itself."
)
