"""Documentation hygiene: the docs reference real artifacts.

DESIGN.md and EXPERIMENTS.md promise specific benchmark files and
experiment ids; these tests keep the promises true as the repo evolves.
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_every_referenced_bench_exists(self):
        text = _read("DESIGN.md")
        for match in re.findall(r"benchmarks/(\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_every_bench_file_is_referenced_somewhere(self):
        documented = set(
            re.findall(r"benchmarks/(\w+\.py)", _read("DESIGN.md"))
        ) | set(re.findall(r"benchmarks/(\w+\.py)", _read("EXPERIMENTS.md")))
        on_disk = {
            path.name
            for path in (ROOT / "benchmarks").glob("bench_*.py")
        }
        undocumented = on_disk - documented
        assert not undocumented, (
            f"benches missing from DESIGN.md/EXPERIMENTS.md: {sorted(undocumented)}"
        )

    def test_referenced_example_scripts_exist(self):
        text = _read("DESIGN.md") + _read("README.md")
        for match in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (ROOT / "examples" / match).exists(), match

    def test_design_confirms_paper_match(self):
        # DESIGN.md must record the title-collision check outcome.
        assert "matches" in _read("DESIGN.md").lower()


class TestExperimentsDoc:
    def test_core_experiment_ids_present(self):
        text = _read("EXPERIMENTS.md")
        for exp_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                       "A1", "A2", "A3", "A4"):
            assert f"## {exp_id} " in text or f"### {exp_id} " in text, exp_id

    def test_headline_savings_recorded(self):
        assert "62.0%" in _read("EXPERIMENTS.md")

    def test_regeneration_command_documented(self):
        assert "pytest benchmarks/ --benchmark-only" in _read("EXPERIMENTS.md")


class TestReadme:
    def test_quickstart_code_actually_runs(self):
        """Execute the README's quickstart block verbatim."""
        text = _read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README lost its quickstart code block"
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - our own documentation
        result = namespace["result"]
        assert result.best.label == "#3 HA: storage"

    def test_cli_commands_documented_exist(self):
        from repro.cli.main import build_parser

        text = _read("README.md")
        documented = set(re.findall(r"python -m repro (\w[\w-]*)", text))
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        real = set(subparsers.choices)
        assert documented <= real, documented - real
