"""The observability core: trace contexts, span recording, stores, tooling.

Covers :mod:`repro.obs` in isolation — traceparent wire round trips,
span nesting through the tracer's context variable, ring-buffer
eviction, JSONL export/import, tree rendering, the structured-log
formatter and the opt-in profiler hook.  Propagation through the
serving stack lives in tests/test_tracing.py.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.errors import ValidationError
from repro.obs import clock
from repro.obs.logging import (
    JsonLogFormatter,
    configure_json_logging,
    log_slow_request,
)
from repro.obs.profile import maybe_profile, profile_summary
from repro.obs.trace import (
    SpanContext,
    SpanRecord,
    TraceStore,
    Tracer,
    format_traceparent,
    maybe_span,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_trace,
    spans_from_jsonl,
    spans_to_jsonl,
    summarize_traces,
)


class TestClock:
    def test_monotonic_never_goes_backwards(self):
        first = clock.monotonic()
        assert clock.monotonic() >= first

    def test_perf_counter_advances(self):
        first = clock.perf_counter()
        assert clock.perf_counter() >= first

    def test_wall_clock_is_plausible_epoch(self):
        assert clock.wall_clock() > 1.5e9  # after 2017, as seconds


class TestTraceparent:
    def test_round_trip(self):
        context = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        parsed = parse_traceparent(format_traceparent(context))
        assert parsed == context

    def test_ids_are_well_formed_and_distinct(self):
        trace_ids = {new_trace_id() for _ in range(32)}
        span_ids = {new_span_id() for _ in range(32)}
        assert len(trace_ids) == 32 and len(span_ids) == 32
        assert all(len(t) == 32 and int(t, 16) >= 0 for t in trace_ids)
        assert all(len(s) == 16 and int(s, 16) >= 0 for s in span_ids)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not-a-traceparent",
            "00-abc-def-01",  # wrong widths
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "01-" + "1" * 32 + "-" + "1" * 16 + "-01",  # unknown version
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "1" * 32 + "-" + "1" * 16,  # missing flags field
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ValidationError):
            parse_traceparent(text)


class TestTracer:
    def test_span_nesting_follows_context(self):
        store = TraceStore()
        tracer = Tracer(store)
        with tracer.span("request") as root:
            with tracer.span("child") as child:
                assert tracer.current() == child.context
            assert tracer.current() == root.context
        assert tracer.current() is None
        spans = store.get(root.trace_id)
        assert {s.name for s in spans} == {"request", "child"}
        child_record = next(s for s in spans if s.name == "child")
        assert child_record.parent_id == root.span_id
        assert child_record.trace_id == root.trace_id

    def test_nested_timings_are_monotone(self):
        store = TraceStore()
        tracer = Tracer(store)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in store.get(outer.trace_id)}
        inner, outer_rec = spans["inner"], spans["outer"]
        assert outer_rec.start <= inner.start <= inner.end <= outer_rec.end

    def test_explicit_parent_and_backdated_start(self):
        store = TraceStore()
        tracer = Tracer(store)
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        before = clock.perf_counter() - 1.0
        with tracer.span("request", parent=parent, start=before) as span:
            pass
        record = store.get(parent.trace_id)[0]
        assert record.parent_id == parent.span_id
        assert record.start == before
        assert record.duration >= 1.0
        assert span.trace_id == parent.trace_id

    def test_record_pre_timed_span(self):
        store = TraceStore()
        tracer = Tracer(store)
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        record = tracer.record(
            "queue_wait", parent=parent, start=1.0, end=1.5, attrs={"k": "v"}
        )
        assert record.duration == pytest.approx(0.5)
        assert store.get(parent.trace_id) == [record]

    def test_record_with_chosen_span_id(self):
        tracer = Tracer(TraceStore())
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        chosen = new_span_id()
        record = tracer.record(
            "megabatch_block", parent=parent, start=0.0, end=1.0,
            span_id=chosen,
        )
        assert record.span_id == chosen

    def test_activate_restore_moves_context_across_threads(self):
        import threading

        tracer = Tracer(TraceStore())
        results = {}
        with tracer.span("root") as root:
            context = tracer.current()

            def worker():
                results["before"] = tracer.current()
                token = tracer.activate(context)
                try:
                    results["during"] = tracer.current()
                finally:
                    tracer.restore(token)
                results["after"] = tracer.current()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results["before"] is None  # contextvars don't cross threads
        assert results["during"] == root.context
        assert results["after"] is None

    def test_child_span_without_active_trace_is_noop(self):
        store = TraceStore()
        tracer = Tracer(store)
        with tracer.child_span("backend_chunk") as span:
            assert span is None
        assert len(store) == 0

    def test_maybe_span_none_tracer_is_shared_noop(self):
        first = maybe_span(None, "evaluate")
        second = maybe_span(None, "terms")
        assert first is second  # one shared nullcontext, zero allocation
        with first as span:
            assert span is None

    def test_observer_sees_every_finished_span(self):
        tracer = Tracer()
        seen = []
        tracer.observer = seen.append
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [record.name for record in seen] == ["b", "a"]

    def test_mutable_attrs_settable_before_exit(self):
        store = TraceStore()
        tracer = Tracer(store)
        with tracer.span("request") as span:
            span.attrs["status"] = "done"
        assert store.snapshot()[0].attrs["status"] == "done"


class TestTraceStore:
    def _add_trace(self, store, name="request"):
        trace_id = new_trace_id()
        store.add(
            SpanRecord(
                trace_id=trace_id,
                span_id=new_span_id(),
                parent_id=None,
                name=name,
                start=0.0,
                end=1.0,
            )
        )
        return trace_id

    def test_capacity_evicts_oldest_and_counts_drops(self):
        store = TraceStore(capacity=2)
        first = self._add_trace(store)
        second = self._add_trace(store)
        third = self._add_trace(store)
        assert len(store) == 2
        assert store.dropped == 1
        assert store.get(first) is None
        assert store.get(second) is not None and store.get(third) is not None

    def test_touching_a_trace_refreshes_recency(self):
        store = TraceStore(capacity=2)
        first = self._add_trace(store)
        second = self._add_trace(store)
        store.add(  # touch `first` so `second` becomes the LRU victim
            SpanRecord(
                trace_id=first, span_id=new_span_id(), parent_id=None,
                name="child", start=0.0, end=0.5,
            )
        )
        self._add_trace(store)
        assert store.get(first) is not None
        assert store.get(second) is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValidationError):
            TraceStore(capacity=0)

    def test_summaries_filter_and_order(self):
        store = TraceStore()
        slow = new_trace_id()
        fast = new_trace_id()
        for trace_id, duration in ((slow, 2.0), (fast, 0.01)):
            store.add(
                SpanRecord(
                    trace_id=trace_id, span_id=new_span_id(), parent_id=None,
                    name="request", start=0.0, end=duration,
                )
            )
        summaries = store.summaries()
        assert [s["trace_id"] for s in summaries] == [fast, slow]  # recent first
        slow_only = store.summaries(min_duration=1.0)
        assert [s["trace_id"] for s in slow_only] == [slow]
        assert len(store.summaries(limit=1)) == 1

    def test_summary_duration_uses_root_span(self):
        store = TraceStore()
        trace_id = new_trace_id()
        root_id = new_span_id()
        store.add(  # child recorded first: recording order != tree order
            SpanRecord(
                trace_id=trace_id, span_id=new_span_id(), parent_id=root_id,
                name="evaluate", start=0.2, end=0.4,
            )
        )
        store.add(
            SpanRecord(
                trace_id=trace_id, span_id=root_id, parent_id=None,
                name="request", start=0.0, end=1.0,
            )
        )
        (summary,) = store.summaries()
        assert summary["name"] == "request"
        assert summary["duration_seconds"] == pytest.approx(1.0)
        assert summary["spans"] == 2


class TestJsonlAndRendering:
    def _sample_spans(self):
        trace_id = new_trace_id()
        root = SpanRecord(
            trace_id=trace_id, span_id=new_span_id(), parent_id=None,
            name="request", start=0.0, end=1.0, wall=1700000000.0,
            attrs={"route": "recommend"},
        )
        child = SpanRecord(
            trace_id=trace_id, span_id=new_span_id(), parent_id=root.span_id,
            name="evaluate", start=0.1, end=0.9,
        )
        return [root, child]

    def test_jsonl_round_trip(self):
        spans = self._sample_spans()
        assert spans_from_jsonl(spans_to_jsonl(spans)) == spans

    def test_jsonl_rejects_garbage(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            spans_from_jsonl("{broken\n")
        with pytest.raises(ValidationError, match="must be an object"):
            spans_from_jsonl("[1, 2]\n")
        with pytest.raises(ValidationError, match="malformed span record"):
            spans_from_jsonl('{"name": "orphan"}\n')

    def test_store_export_matches_snapshot(self):
        store = TraceStore()
        for span in self._sample_spans():
            store.add(span)
        assert spans_from_jsonl(store.export_jsonl()) == store.snapshot()

    def test_render_trace_tree_shape(self):
        spans = self._sample_spans()
        text = render_trace(spans)
        assert f"trace {spans[0].trace_id}" in text
        assert "(2 spans, 1.000s)" in text
        assert "`- request" in text
        assert "`- evaluate" in text
        assert "route=recommend" in text
        # Child is indented under the root.
        request_line = next(l for l in text.splitlines() if "request" in l)
        evaluate_line = next(l for l in text.splitlines() if "evaluate" in l)
        indent = lambda line: len(line) - len(line.lstrip(" |`-"))
        assert evaluate_line.index("`-") > request_line.index("`-")

    def test_render_orphan_parents_become_roots(self):
        spans = self._sample_spans()
        spans[0].parent_id = new_span_id()  # parent never recorded
        text = render_trace(spans)
        assert "`- request" in text  # still renders as the root

    def test_render_empty(self):
        assert render_trace([]) == "(no spans)"

    def test_summarize_traces_groups_by_trace(self):
        first = self._sample_spans()
        second = self._sample_spans()
        summaries = summarize_traces(first + second)
        assert len(summaries) == 2
        assert {s["trace_id"] for s in summaries} == {
            first[0].trace_id, second[0].trace_id,
        }


class TestJsonLogging:
    def _formatted(self, record):
        return json.loads(JsonLogFormatter().format(record))

    def test_extras_and_exceptions_serialize(self):
        logger = logging.Logger("obs-test")
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        logger.addHandler(handler)
        try:
            raise ValueError("boom")
        except ValueError:
            logger.warning(
                "something %s", "happened", exc_info=True,
                extra={"trace_id": "abc123"},
            )
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "WARNING"
        assert payload["message"] == "something happened"
        assert payload["trace_id"] == "abc123"
        assert payload["exc_type"] == "ValueError"
        assert payload["exc_message"] == "boom"
        assert isinstance(payload["ts"], float)

    def test_configure_is_idempotent(self):
        logger = configure_json_logging("repro.obs.test", stream=io.StringIO())
        again = configure_json_logging("repro.obs.test", stream=io.StringIO())
        assert logger is again
        assert len(logger.handlers) == 1
        assert not logger.propagate

    def test_log_slow_request_shape(self):
        stream = io.StringIO()
        logger = configure_json_logging("repro.obs.slow", stream=stream)
        log_slow_request(
            logger, route="recommend", status=200, seconds=1.23456789,
            threshold=1.0, trace_id="deadbeef",
        )
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "slow_request"
        assert payload["route"] == "recommend"
        assert payload["status"] == 200
        assert payload["seconds"] == pytest.approx(1.234568)
        assert payload["threshold"] == 1.0
        assert payload["trace_id"] == "deadbeef"


class TestProfileHook:
    def test_disabled_yields_none(self):
        with maybe_profile(False) as profiler:
            assert profiler is None

    def test_enabled_profiles_and_summarizes(self):
        with maybe_profile(True) as profiler:
            sum(range(1000))
        assert profiler is not None
        summary = profile_summary(profiler, limit=5)
        assert "cumulative" in summary
