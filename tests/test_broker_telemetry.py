"""TelemetryStore and KnowledgeBase: the broker's P/f/t database."""

from __future__ import annotations

import pytest

from repro.broker.knowledge_base import KnowledgeBase
from repro.broker.telemetry import TelemetryStore
from repro.cloud.deployment import deploy_system
from repro.cloud.faults import FaultInjector
from repro.cloud.providers import metalcloud
from repro.errors import InsufficientTelemetryError, ValidationError
from repro.units import MINUTES_PER_YEAR


class TestTelemetryStore:
    def test_exposure_required_for_estimates(self):
        store = TelemetryStore()
        store.record_failure("p", "vm")
        with pytest.raises(InsufficientTelemetryError, match="exposure"):
            store.down_probability("p", "vm")

    def test_down_probability_is_down_over_exposure(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", node_count=10, horizon_minutes=1000.0)
        store.record_outage("p", "vm", down_minutes=100.0)
        assert store.down_probability("p", "vm") == pytest.approx(0.01)

    def test_failures_per_year(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", 1, MINUTES_PER_YEAR)
        for _ in range(6):
            store.record_failure("p", "vm")
        assert store.failures_per_year("p", "vm") == pytest.approx(6.0)

    def test_failover_minutes_is_mean(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", 1, MINUTES_PER_YEAR)
        store.record_failover("p", "vm", 8.0)
        store.record_failover("p", "vm", 12.0)
        assert store.failover_minutes("p", "vm") == pytest.approx(10.0)

    def test_failover_without_samples_raises(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", 1, MINUTES_PER_YEAR)
        with pytest.raises(InsufficientTelemetryError, match="failover"):
            store.failover_minutes("p", "vm")

    def test_exposure_accumulates(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", 2, MINUTES_PER_YEAR)
        store.register_exposure("p", "vm", 3, MINUTES_PER_YEAR)
        assert store.exposure_years("p", "vm") == pytest.approx(5.0)

    def test_providers_kept_separate(self):
        store = TelemetryStore()
        store.register_exposure("a", "vm", 1, 1000.0)
        store.register_exposure("b", "vm", 1, 1000.0)
        store.record_outage("a", "vm", 100.0)
        assert store.down_probability("a", "vm") == pytest.approx(0.1)
        assert store.down_probability("b", "vm") == 0.0

    def test_ingest_counts_events(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.small")
        events = FaultInjector(provider, seed=1).inject(
            [vm], horizon_minutes=10 * MINUTES_PER_YEAR
        )
        store = TelemetryStore()
        assert store.ingest(events) == len(events)

    def test_validation_of_inputs(self):
        store = TelemetryStore()
        with pytest.raises(ValidationError):
            store.register_exposure("p", "vm", 0, 100.0)
        with pytest.raises(ValidationError):
            store.register_exposure("p", "vm", 1, 0.0)
        with pytest.raises(ValidationError):
            store.record_outage("p", "vm", -1.0)
        with pytest.raises(ValidationError):
            store.record_failover("p", "vm", -1.0)

    def test_observed_components_sorted(self):
        store = TelemetryStore()
        store.register_exposure("b", "vm", 1, 100.0)
        store.register_exposure("a", "volume", 1, 100.0)
        assert store.observed_components() == (("a", "volume"), ("b", "vm"))


class TestSnapshotAndMerge:
    def make_store(self, provider="p", kind="vm"):
        store = TelemetryStore()
        store.register_exposure(provider, kind, 4, 2 * MINUTES_PER_YEAR)
        for _ in range(3):
            store.record_failure(provider, kind)
        store.record_outage(provider, kind, 120.0)
        store.record_failover(provider, kind, 7.5)
        store.record_failover(provider, kind, 2.5)
        return store

    def test_snapshot_round_trip_is_exact(self):
        store = self.make_store()
        restored = TelemetryStore.from_snapshot(store.snapshot())
        assert restored.snapshot() == store.snapshot()
        assert restored.down_probability("p", "vm") == store.down_probability(
            "p", "vm"
        )
        assert restored.failover_minutes("p", "vm") == store.failover_minutes(
            "p", "vm"
        )

    def test_snapshot_is_a_deep_copy(self):
        store = self.make_store()
        snapshot = store.snapshot()
        store.record_failure("p", "vm")
        assert snapshot["components"][0]["failures"] == 3

    def test_snapshot_version_checked(self):
        with pytest.raises(ValidationError, match="snapshot_version"):
            TelemetryStore.from_snapshot({"snapshot_version": 99})

    def test_merge_disjoint_keys_equals_union(self):
        left = self.make_store(provider="a")
        right = self.make_store(provider="b")
        merged = left.copy().merge(right)
        assert merged.observed_components() == (("a", "vm"), ("b", "vm"))
        assert merged.down_probability("a", "vm") == left.down_probability(
            "a", "vm"
        )
        assert merged.down_probability("b", "vm") == right.down_probability(
            "b", "vm"
        )

    def test_merge_shared_key_adds_counters(self):
        left = TelemetryStore()
        left.register_exposure("p", "vm", 1, 1000.0)
        left.record_failure("p", "vm")
        left.record_failover("p", "vm", 4.0)
        right = TelemetryStore()
        right.register_exposure("p", "vm", 1, 3000.0)
        right.record_failure("p", "vm")
        right.record_failover("p", "vm", 8.0)
        merged = left.copy().merge(right)
        assert merged.exposure_years("p", "vm") == pytest.approx(
            4000.0 / MINUTES_PER_YEAR
        )
        assert merged.failure_count("p", "vm") == 2
        assert merged.failover_minutes("p", "vm") == pytest.approx(6.0)

    def test_merge_returns_self_and_leaves_other_intact(self):
        left = TelemetryStore()
        right = self.make_store()
        assert left.merge(right) is left
        assert right.failure_count("p", "vm") == 3
        # The merged samples are copies, not shared lists.
        left.record_failover("p", "vm", 100.0)
        assert len(right._stats[("p", "vm")].failover_samples) == 2

    def test_merge_into_empty_store_is_bit_identical(self):
        source = self.make_store()
        merged = TelemetryStore().merge(source)
        assert merged.snapshot() == source.snapshot()

    def test_adopt_publishes_other_contents(self):
        serving = TelemetryStore()
        serving.register_exposure("p", "vm", 1, 100.0)
        fresh = self.make_store()
        serving.adopt(fresh)
        assert serving.failure_count("p", "vm") == 3


class TestKnowledgeBase:
    def make_populated_store(self, years=10.0, fleet=20, seed=2):
        provider = metalcloud()
        deployment_resources = [
            provider.provision_vm("bm.small") for _ in range(fleet)
        ]
        store = TelemetryStore()
        store.register_exposure(
            provider.name, "vm", fleet, years * MINUTES_PER_YEAR
        )
        events = FaultInjector(provider, seed=seed).inject(
            deployment_resources, horizon_minutes=years * MINUTES_PER_YEAR
        )
        store.ingest(events)
        return provider, store

    def test_estimate_converges_to_ground_truth(self):
        provider, store = self.make_populated_store(years=30.0, fleet=50)
        estimate = KnowledgeBase(store).estimate(provider.name, "vm")
        truth_p, truth_f, truth_t = provider.reliability.triple("vm")
        assert estimate.down_probability == pytest.approx(truth_p, rel=0.15)
        assert estimate.failures_per_year == pytest.approx(truth_f, rel=0.1)
        assert estimate.failover_minutes == pytest.approx(truth_t, rel=0.1)

    def test_min_failure_samples_enforced(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", 1, MINUTES_PER_YEAR)
        store.record_failure("p", "vm")
        kb = KnowledgeBase(store, min_failure_samples=5)
        with pytest.raises(InsufficientTelemetryError, match="at least 5"):
            kb.estimate("p", "vm")

    def test_node_spec_materialization(self):
        provider, store = self.make_populated_store()
        node = KnowledgeBase(store).node_spec(provider.name, "vm", monthly_cost=200.0)
        assert node.kind == "vm"
        assert node.monthly_cost == 200.0
        assert 0.0 < node.down_probability < 0.01

    def test_describe_includes_estimates(self):
        provider, store = self.make_populated_store()
        text = KnowledgeBase(store).describe()
        assert "metalcloud/vm" in text

    def test_describe_flags_insufficient_data(self):
        store = TelemetryStore()
        store.register_exposure("p", "vm", 1, 1000.0)
        text = KnowledgeBase(store).describe()
        assert "insufficient" in text
