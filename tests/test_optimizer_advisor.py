"""Upgrade advisor: marginal single-cluster moves."""

from __future__ import annotations

import pytest

from repro.errors import OptimizerError
from repro.optimizer.advisor import advise_upgrades
from repro.optimizer.brute_force import brute_force_optimize
from repro.workloads.case_study import case_study_problem

#: The case study's deployed (ad-hoc, all-HA) configuration.
AS_IS = ("hypervisor-n+1", "raid-1", "dual-gateway")
#: The paper's recommended configuration.
RECOMMENDED = ("none", "raid-1", "none")


class TestAdviseUpgrades:
    def test_current_option_evaluated_correctly(self, paper_problem):
        advice = advise_upgrades(paper_problem, AS_IS)
        reference = brute_force_optimize(paper_problem).option(8)
        assert advice.current.tco.total == pytest.approx(reference.tco.total)

    def test_one_move_per_cluster_alternative(self, paper_problem):
        # k=2 per cluster: each cluster has exactly one alternative.
        advice = advise_upgrades(paper_problem, AS_IS)
        assert len(advice.moves) == 3

    def test_moves_sorted_by_value(self, paper_problem):
        advice = advise_upgrades(paper_problem, AS_IS)
        deltas = [move.total_monthly_delta for move in advice.moves]
        assert deltas == sorted(deltas)

    def test_from_overbuilt_all_moves_save_money(self, paper_problem):
        # The as-is deployment is over-engineered: dropping any layer's
        # HA still meets or nearly meets the SLA and reduces TCO.
        advice = advise_upgrades(paper_problem, AS_IS)
        assert advice.best_move is not None
        assert advice.best_move.monthly_delta < 0.0

    def test_best_single_move_from_as_is_drops_compute(self, paper_problem):
        # Dropping the expensive compute HA recovers $500/month.
        advice = advise_upgrades(paper_problem, AS_IS)
        assert advice.best_move.cluster_name == "compute"
        assert advice.best_move.to_technology == "none"

    def test_optimum_is_a_local_optimum(self, paper_problem):
        # From the paper's recommendation, no single move pays off.
        advice = advise_upgrades(paper_problem, RECOMMENDED)
        assert advice.best_move is None
        assert all(move.total_monthly_delta >= 0.0 for move in advice.moves)

    def test_migration_cost_discourages_marginal_moves(self, paper_problem):
        free = advise_upgrades(paper_problem, AS_IS, migration_cost=0.0)
        taxed = advise_upgrades(
            paper_problem, AS_IS, migration_cost=120_000.0,
            amortization_months=12,
        )
        # $10k/month amortized swamps every saving.
        assert free.best_move is not None
        assert taxed.best_move is None

    def test_amortization_spreads_cost(self, paper_problem):
        advice = advise_upgrades(
            paper_problem, AS_IS, migration_cost=1200.0, amortization_months=12
        )
        assert advice.moves[0].amortized_migration_cost == pytest.approx(100.0)

    def test_unknown_technology_rejected(self, paper_problem):
        with pytest.raises(OptimizerError, match="unknown technology"):
            advise_upgrades(paper_problem, ("warp-drive", "raid-1", "none"))

    def test_wrong_arity_rejected(self, paper_problem):
        with pytest.raises(OptimizerError, match="choice names"):
            advise_upgrades(paper_problem, ("none", "none"))

    def test_zero_amortization_rejected(self, paper_problem):
        with pytest.raises(OptimizerError):
            advise_upgrades(
                paper_problem, AS_IS, migration_cost=100.0, amortization_months=0
            )

    def test_describe_flags_recommendation(self, paper_problem):
        text = advise_upgrades(paper_problem, AS_IS).describe()
        assert "recommendation:" in text

    def test_greedy_walk_reaches_global_optimum(self, paper_problem):
        """Following best single moves from the as-is deployment reaches
        the paper's recommended option (a nice structural property of
        this problem instance, not a general theorem)."""
        reference = brute_force_optimize(paper_problem).best
        current = AS_IS
        for _ in range(4):
            advice = advise_upgrades(paper_problem, current)
            if advice.best_move is None:
                break
            current = advice.best_move.option.choice_names
        assert current == reference.choice_names
