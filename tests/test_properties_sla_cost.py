"""Property-based tests on penalty clauses, slippage and TCO."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sla.contract import Contract
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    ServiceCreditPenalty,
    TieredPenalty,
)
from repro.sla.sla import UptimeSLA
from repro.sla.slippage import expected_slippage_hours_per_month

uptimes = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
sla_targets = st.floats(min_value=50.0, max_value=100.0, allow_nan=False)
slippages = st.floats(min_value=0.0, max_value=730.0, allow_nan=False)
rates = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)


@st.composite
def penalty_clauses(draw):
    """Any of the five clause shapes with random parameters."""
    which = draw(st.integers(min_value=0, max_value=4))
    if which == 0:
        return NoPenalty()
    if which == 1:
        return LinearPenalty(draw(rates))
    if which == 2:
        widths = draw(
            st.lists(
                st.floats(min_value=0.5, max_value=24.0), min_size=1, max_size=4
            )
        )
        tier_rates = draw(
            st.lists(rates, min_size=len(widths), max_size=len(widths))
        )
        return TieredPenalty(tuple(zip(widths, tier_rates)))
    if which == 3:
        return CappedPenalty(LinearPenalty(draw(rates)), monthly_cap=draw(rates))
    thresholds = sorted(
        set(
            draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=100.0),
                    min_size=1,
                    max_size=4,
                )
            )
        )
    )
    fractions = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=len(thresholds),
                max_size=len(thresholds),
            )
        )
    )
    return ServiceCreditPenalty(
        draw(st.floats(min_value=0.0, max_value=100_000.0)),
        tuple(zip(thresholds, fractions)),
    )


class TestSlippageProperties:
    @given(uptime=uptimes, target=sla_targets)
    def test_non_negative(self, uptime, target):
        assert expected_slippage_hours_per_month(uptime, UptimeSLA(target)) >= 0.0

    @given(uptime=uptimes, target=sla_targets)
    def test_zero_iff_sla_met(self, uptime, target):
        hours = expected_slippage_hours_per_month(uptime, UptimeSLA(target))
        if uptime >= target / 100.0:
            assert hours == 0.0
        else:
            assert hours > 0.0

    @given(target=sla_targets, a=uptimes, b=uptimes)
    def test_antitone_in_uptime(self, target, a, b):
        sla = UptimeSLA(target)
        low, high = min(a, b), max(a, b)
        assert expected_slippage_hours_per_month(
            high, sla
        ) <= expected_slippage_hours_per_month(low, sla)

    @given(uptime=uptimes, target=sla_targets)
    def test_bounded_by_monthly_hours(self, uptime, target):
        hours = expected_slippage_hours_per_month(uptime, UptimeSLA(target))
        assert hours <= 730.0 + 1e-9


class TestPenaltyProperties:
    @given(clause=penalty_clauses())
    def test_zero_slippage_is_free(self, clause):
        assert clause.monthly_penalty(0.0) == 0.0

    @given(clause=penalty_clauses(), a=slippages, b=slippages)
    @settings(max_examples=200)
    def test_monotone_non_decreasing(self, clause, a, b):
        low, high = min(a, b), max(a, b)
        assert clause.monthly_penalty(high) >= clause.monthly_penalty(low) - 1e-9

    @given(clause=penalty_clauses(), hours=slippages)
    def test_non_negative(self, clause, hours):
        assert clause.monthly_penalty(hours) >= 0.0


class TestContractProperties:
    @given(target=sla_targets, rate=rates, a=uptimes, b=uptimes)
    def test_expected_penalty_antitone_in_uptime(self, target, rate, a, b):
        contract = Contract.linear(target, rate)
        low, high = min(a, b), max(a, b)
        assert contract.expected_monthly_penalty(high) <= (
            contract.expected_monthly_penalty(low) + 1e-9
        )

    @given(target=sla_targets, uptime=uptimes, r1=rates, r2=rates)
    def test_expected_penalty_monotone_in_rate(self, target, uptime, r1, r2):
        low, high = min(r1, r2), max(r1, r2)
        cheap = Contract.linear(target, low).expected_monthly_penalty(uptime)
        dear = Contract.linear(target, high).expected_monthly_penalty(uptime)
        assert dear >= cheap - 1e-9
