"""Sharded telemetry ingestion: partitioning, exactness, merging.

The load-bearing guarantee: because records partition on the store's own
accumulation key, a drained sharded pipeline must reproduce single-store
ingestion bit-for-bit — same ``P̂``, ``f̂`` and ``t̂`` for every component
class, at any shard count, on both backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.telemetry import TelemetryStore
from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.cloud.faults import FaultInjector
from repro.cloud.providers import all_providers
from repro.errors import ValidationError
from repro.server.ingest import (
    ExposureRecord,
    ShardedIngestor,
    record_from_dict,
    record_to_dict,
    records_from_jsonl,
    records_to_jsonl,
    shard_index,
)
from repro.units import MINUTES_PER_YEAR

HORIZON = 2 * MINUTES_PER_YEAR


def simulation_trace(seed: int = 3) -> list:
    """Exposure + fault-injector records across every built-in provider."""
    records: list = []
    for provider in all_providers():
        resources = []
        for kind, count in (("vm", 10), ("volume", 6), ("gateway", 3)):
            card = provider.rate_card
            sku = {
                "vm": card.instance_types[0].name,
                "volume": card.volume_types[0].name,
                "gateway": card.gateway_types[0].name,
            }[kind]
            for _ in range(count):
                if kind == "volume":
                    resources.append(provider.provision_volume(sku, role="t"))
                elif kind == "gateway":
                    resources.append(provider.provision_gateway(sku, role="t"))
                else:
                    resources.append(provider.provision_vm(sku, role="t"))
            records.append(ExposureRecord(provider.name, kind, count, HORIZON))
        records.extend(
            FaultInjector(provider, seed=seed).inject(
                resources, horizon_minutes=HORIZON
            )
        )
    return records


def ingest_directly(records) -> TelemetryStore:
    """Reference behaviour: one store, records applied in order."""
    store = TelemetryStore()
    for record in records:
        if isinstance(record, ExposureRecord):
            store.register_exposure(
                record.provider,
                record.component_kind,
                record.node_count,
                record.horizon_minutes,
            )
        else:
            store.ingest((record,))
    return store


def assert_estimates_identical(store: TelemetryStore, reference: TelemetryStore):
    components = reference.observed_components()
    assert store.observed_components() == components
    for provider, kind in components:
        assert store.down_probability(provider, kind) == (
            reference.down_probability(provider, kind)
        ), (provider, kind)
        assert store.failures_per_year(provider, kind) == (
            reference.failures_per_year(provider, kind)
        ), (provider, kind)
        assert store.failover_minutes(provider, kind) == (
            reference.failover_minutes(provider, kind)
        ), (provider, kind)


class TestRecordWireFormat:
    def test_event_round_trip(self):
        event = ResourceEvent(
            12.5, "metalcloud", "vm", "vm-1", ResourceEventKind.REPAIR, 30.0
        )
        assert record_from_dict(record_to_dict(event)) == event

    def test_exposure_round_trip(self):
        record = ExposureRecord("metalcloud", "volume", 12, 525600.0)
        assert record_from_dict(record_to_dict(record)) == record

    def test_jsonl_round_trip(self):
        records = simulation_trace()[:50]
        assert records_from_jsonl(records_to_jsonl(records)) == records

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown telemetry record kind"):
            record_from_dict({"kind": "reboot", "provider": "p"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown telemetry record keys"):
            record_from_dict(
                {"kind": "exposure", "provider": "p", "component_kind": "vm",
                 "node_count": 1, "horizon_minutes": 1.0, "typo": True}
            )

    def test_jsonl_errors_carry_line_numbers(self):
        good = records_to_jsonl(simulation_trace()[:2]).splitlines()
        text = "\n".join([good[0], "{broken", good[1]])
        with pytest.raises(ValidationError, match="line 2"):
            records_from_jsonl(text)


class TestPartitioning:
    def test_shard_index_is_stable_and_in_range(self):
        for shards in (1, 2, 4, 8):
            for provider in ("a", "b", "metalcloud"):
                for kind in ("vm", "volume"):
                    index = shard_index(provider, kind, shards)
                    assert 0 <= index < shards
                    assert index == shard_index(provider, kind, shards)

    def test_every_key_maps_to_one_shard(self):
        records = simulation_trace()
        seen: dict[tuple[str, str], int] = {}
        for record in records:
            payload = record_to_dict(record)
            key = (payload["provider"], payload["component_kind"])
            index = shard_index(*key, 4)
            assert seen.setdefault(key, index) == index


class TestShardedIngestion:
    @pytest.fixture(scope="class")
    def trace(self):
        return simulation_trace()

    @pytest.fixture(scope="class")
    def reference(self, trace):
        return ingest_directly(trace)

    @pytest.mark.parametrize("shards", [1, 4, 7])
    def test_sharded_equals_single_store(self, trace, reference, shards):
        """The acceptance criterion: N>=4 shards, estimates identical."""
        serving = TelemetryStore()
        with ShardedIngestor(serving, num_shards=shards) as ingestor:
            assert ingestor.submit(trace) == len(trace)
            merged = ingestor.flush()
        assert merged == len(trace)
        assert_estimates_identical(serving, reference)

    def test_jsonl_path_equals_single_store(self, trace, reference):
        serving = TelemetryStore()
        with ShardedIngestor(serving, num_shards=4) as ingestor:
            ingestor.submit_jsonl(records_to_jsonl(trace))
            ingestor.flush()
        assert_estimates_identical(serving, reference)

    def test_process_backend_equals_single_store(self, trace, reference):
        serving = TelemetryStore()
        with ShardedIngestor(
            serving, num_shards=4, backend="process"
        ) as ingestor:
            ingestor.submit(trace)
            ingestor.flush()
        assert_estimates_identical(serving, reference)

    def test_multiple_submissions_and_flushes(self, trace, reference):
        """Incremental merges land; estimates agree to float rounding."""
        serving = TelemetryStore()
        third = len(trace) // 3
        with ShardedIngestor(serving, num_shards=4) as ingestor:
            for start in range(0, len(trace), third):
                ingestor.submit(trace[start:start + third])
                ingestor.flush()
        for provider, kind in reference.observed_components():
            assert serving.down_probability(provider, kind) == pytest.approx(
                reference.down_probability(provider, kind), rel=1e-12
            )
            assert serving.failures_per_year(provider, kind) == pytest.approx(
                reference.failures_per_year(provider, kind), rel=1e-12
            )

    def test_close_performs_final_flush(self, trace, reference):
        serving = TelemetryStore()
        ingestor = ShardedIngestor(serving, num_shards=4)
        ingestor.submit(trace)
        ingestor.close()
        assert_estimates_identical(serving, reference)
        with pytest.raises(ValidationError, match="closed"):
            ingestor.submit(trace[:1])

    def test_periodic_merge_publishes_without_explicit_flush(self, trace):
        import time

        serving = TelemetryStore()
        with ShardedIngestor(
            serving, num_shards=2, merge_interval=0.05
        ) as ingestor:
            ingestor.submit(trace)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if serving.observed_components():
                    break
                time.sleep(0.02)
            assert serving.observed_components()
            assert ingestor.merges >= 1

    def test_idle_flush_skips_the_merge_entirely(self):
        serving = TelemetryStore()
        serving.register_exposure("p", "vm", 1, 100.0)
        with ShardedIngestor(serving, num_shards=2) as ingestor:
            assert ingestor.flush() == 0
            assert ingestor.merges == 0  # no copy/adopt churn when idle
        assert serving.exposure_years("p", "vm") > 0.0

    def test_rejected_records_are_counted_not_fatal(self):
        serving = TelemetryStore()
        with ShardedIngestor(serving, num_shards=2) as ingestor:
            ingestor.submit_jsonl(
                '{"kind": "exposure", "provider": "p", "component_kind": "vm",'
                ' "node_count": 1, "horizon_minutes": 100.0}\n'
                '{"kind": "exposure", "provider": "p", "component_kind": "vm",'
                ' "node_count": 0, "horizon_minutes": 100.0}\n'
            )
            ingestor.flush()
            stats = ingestor.shard_stats()
        assert sum(s.ingested for s in stats) == 1
        assert sum(s.rejected for s in stats) == 1
        assert serving.exposure_years("p", "vm") > 0.0

    def test_unroutable_line_rejected_synchronously(self):
        serving = TelemetryStore()
        with ShardedIngestor(serving, num_shards=2) as ingestor:
            with pytest.raises(ValidationError, match="line 1"):
                ingestor.submit_jsonl('{"kind": "exposure"}')

    def test_metrics_shape(self, trace):
        serving = TelemetryStore()
        with ShardedIngestor(serving, num_shards=3) as ingestor:
            ingestor.submit(trace)
            ingestor.flush()
            metrics = ingestor.metrics()
        assert metrics["num_shards"] == 3
        assert metrics["merges"] == 1
        assert len(metrics["shards"]) == 3
        assert sum(entry["ingested"] for entry in metrics["shards"]) == len(trace)

    def test_dead_shard_times_out_instead_of_wedging(self):
        from repro.errors import BrokerError

        serving = TelemetryStore()
        ingestor = ShardedIngestor(serving, num_shards=2, flush_timeout=0.2)
        ingestor.submit([ExposureRecord("p", "vm", 1, 100.0)])
        # Simulate a crashed worker: stop shard 0 behind the router's back.
        ingestor._shards[0].in_queue.put(("stop", None))
        import time

        time.sleep(0.05)
        with pytest.raises(BrokerError, match="did not answer a flush"):
            ingestor.flush()
        # The healthy shard's delta was still published, and close()
        # stops the survivors even though its final flush fails too.
        with pytest.raises(BrokerError):
            ingestor.close()

    def test_late_flush_reply_is_merged_not_misattributed(self):
        # A reply from a timed-out flush arriving late must be merged
        # (its delta is real data) and must not satisfy the next flush's
        # wait — the sequence tag resynchronizes the stream.
        serving = TelemetryStore()
        with ShardedIngestor(serving, num_shards=1) as ingestor:
            late = TelemetryStore()
            late.register_exposure("p", "vm", 1, 100.0)
            ingestor._shards[0].out_queue.put((0, 1, 0, late.snapshot()))
            ingestor.submit([ExposureRecord("p", "vm", 1, 100.0)])
            merged = ingestor.flush()
            assert merged == 2  # the late delta plus the current one
            assert serving.exposure_years("p", "vm") == pytest.approx(
                200.0 / MINUTES_PER_YEAR
            )

    def test_validation_of_constructor_inputs(self):
        store = TelemetryStore()
        with pytest.raises(ValidationError, match="num_shards"):
            ShardedIngestor(store, num_shards=0)
        with pytest.raises(ValidationError, match="backend"):
            ShardedIngestor(store, backend="fiber")
        with pytest.raises(ValidationError, match="merge_interval"):
            ShardedIngestor(store, merge_interval=0.0)


# -- merge associativity properties -----------------------------------------

outage_minutes = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)
failover_samples = st.lists(
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    min_size=1,
    max_size=10,
)

component_keys = st.sampled_from(
    [("a", "vm"), ("a", "volume"), ("b", "vm"), ("c", "gateway")]
)


@st.composite
def observation_streams(draw):
    """A list of (key, outage, failovers) observations for many keys."""
    entries = draw(
        st.lists(
            st.tuples(component_keys, outage_minutes, failover_samples),
            min_size=1,
            max_size=24,
        )
    )
    return entries


def _apply_stream(store: TelemetryStore, entries) -> None:
    for (provider, kind), outage, failovers in entries:
        store.register_exposure(provider, kind, 1, 5000.0)
        store.record_failure(provider, kind)
        store.record_outage(provider, kind, outage)
        for sample in failovers:
            store.record_failover(provider, kind, sample)


def _assert_close(left: TelemetryStore, right: TelemetryStore) -> None:
    assert left.observed_components() == right.observed_components()
    for provider, kind in left.observed_components():
        assert left.down_probability(provider, kind) == pytest.approx(
            right.down_probability(provider, kind), rel=1e-12, abs=1e-15
        )
        assert left.failures_per_year(provider, kind) == pytest.approx(
            right.failures_per_year(provider, kind), rel=1e-12
        )
        assert left.failover_minutes(provider, kind) == pytest.approx(
            right.failover_minutes(provider, kind), rel=1e-12
        )


class TestMergeProperties:
    @given(entries=observation_streams(), cut=st.integers(0, 24))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_split_stream_matches_single_store(self, entries, cut):
        """merge(prefix, suffix) == ingest-everything, to rounding."""
        cut = min(cut, len(entries))
        single = TelemetryStore()
        _apply_stream(single, entries)
        prefix, suffix = TelemetryStore(), TelemetryStore()
        _apply_stream(prefix, entries[:cut])
        _apply_stream(suffix, entries[cut:])
        _assert_close(prefix.merge(suffix), single)

    @given(entries=observation_streams())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, entries):
        """(a + b) + c == a + (b + c), to rounding."""
        thirds = [
            entries[0::3],
            entries[1::3],
            entries[2::3],
        ]
        stores = []
        for part in thirds:
            store = TelemetryStore()
            _apply_stream(store, part)
            stores.append(store)
        a1, b1, c1 = (store.copy() for store in stores)
        a2, b2, c2 = (store.copy() for store in stores)
        left = a1.merge(b1).merge(c1)
        right = a2.merge(b2.merge(c2))
        _assert_close(left, right)

    @given(entries=observation_streams(), shards=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_key_partitioned_merge_is_exact(self, entries, shards):
        """Partitioning on the accumulation key is bit-exact, any N."""
        single = TelemetryStore()
        _apply_stream(single, entries)
        partitions = [TelemetryStore() for _ in range(shards)]
        for entry in entries:
            (provider, kind), _, _ = entry
            index = shard_index(provider, kind, shards)
            _apply_stream(partitions[index], [entry])
        merged = TelemetryStore()
        for partition in partitions:
            merged.merge(partition)
        assert merged.snapshot() == single.snapshot()
