"""Penalty clauses: linear (Eq. 5) plus the extension shapes."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    ServiceCreditPenalty,
    TieredPenalty,
)


class TestNoPenalty:
    def test_always_zero(self):
        clause = NoPenalty()
        assert clause.monthly_penalty(0.0) == 0.0
        assert clause.monthly_penalty(100.0) == 0.0

    def test_rejects_negative_slippage(self):
        with pytest.raises(ValidationError):
            NoPenalty().monthly_penalty(-1.0)


class TestLinearPenalty:
    def test_paper_shape(self):
        clause = LinearPenalty(100.0)
        assert clause.monthly_penalty(3.5) == pytest.approx(350.0)

    def test_zero_slippage_is_free(self):
        assert LinearPenalty(100.0).monthly_penalty(0.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValidationError):
            LinearPenalty(-1.0)

    def test_describe_shows_rate(self):
        assert "100" in LinearPenalty(100.0).describe()


class TestTieredPenalty:
    @pytest.fixture
    def clause(self):
        return TieredPenalty(((2.0, 100.0), (8.0, 250.0), (float("inf"), 500.0)))

    def test_within_first_tier(self, clause):
        assert clause.monthly_penalty(1.0) == pytest.approx(100.0)

    def test_spanning_two_tiers(self, clause):
        # 2h @ 100 + 3h @ 250.
        assert clause.monthly_penalty(5.0) == pytest.approx(200.0 + 750.0)

    def test_open_ended_tail(self, clause):
        # 2h @ 100 + 8h @ 250 + 10h @ 500.
        assert clause.monthly_penalty(20.0) == pytest.approx(200 + 2000 + 5000)

    def test_closed_final_tier_extends_last_rate(self):
        clause = TieredPenalty(((2.0, 100.0),))
        # Beyond the only (closed) tier the final rate keeps applying.
        assert clause.monthly_penalty(5.0) == pytest.approx(200.0 + 300.0)

    def test_monotone(self, clause):
        values = [clause.monthly_penalty(h) for h in (0.0, 1.0, 3.0, 10.0, 50.0)]
        assert values == sorted(values)

    def test_rejects_empty_tiers(self):
        with pytest.raises(ValidationError):
            TieredPenalty(())

    def test_rejects_infinite_middle_tier(self):
        with pytest.raises(ValidationError):
            TieredPenalty(((float("inf"), 100.0), (2.0, 50.0)))

    def test_rejects_zero_width_tier(self):
        with pytest.raises(ValidationError):
            TieredPenalty(((0.0, 100.0),))


class TestCappedPenalty:
    def test_caps_inner_clause(self):
        clause = CappedPenalty(LinearPenalty(100.0), monthly_cap=500.0)
        assert clause.monthly_penalty(3.0) == pytest.approx(300.0)
        assert clause.monthly_penalty(10.0) == pytest.approx(500.0)

    def test_zero_cap_silences_everything(self):
        clause = CappedPenalty(LinearPenalty(100.0), monthly_cap=0.0)
        assert clause.monthly_penalty(99.0) == 0.0

    def test_rejects_negative_cap(self):
        with pytest.raises(ValidationError):
            CappedPenalty(LinearPenalty(100.0), monthly_cap=-1.0)

    def test_describe_mentions_cap(self):
        clause = CappedPenalty(LinearPenalty(100.0), monthly_cap=500.0)
        assert "500" in clause.describe()


class TestServiceCreditPenalty:
    @pytest.fixture
    def clause(self):
        return ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25)))

    def test_below_first_threshold(self, clause):
        assert clause.monthly_penalty(1.0) == 0.0

    def test_first_credit_band(self, clause):
        assert clause.monthly_penalty(2.0) == pytest.approx(500.0)

    def test_highest_band_wins(self, clause):
        assert clause.monthly_penalty(50.0) == pytest.approx(1250.0)

    def test_step_function_not_interpolated(self, clause):
        assert clause.monthly_penalty(9.99) == pytest.approx(500.0)

    def test_rejects_decreasing_thresholds(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ((5.0, 0.1), (2.0, 0.2)))

    def test_rejects_decreasing_fractions(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ((2.0, 0.3), (5.0, 0.1)))

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ((2.0, 1.5),))

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ())


class TestMonotonicityContract:
    """Every clause must be non-decreasing (the pruning rule needs it)."""

    @pytest.mark.parametrize(
        "clause",
        [
            NoPenalty(),
            LinearPenalty(50.0),
            TieredPenalty(((1.0, 10.0), (float("inf"), 100.0))),
            CappedPenalty(LinearPenalty(100.0), monthly_cap=400.0),
            ServiceCreditPenalty(2000.0, ((1.0, 0.05), (5.0, 0.2))),
        ],
        ids=["none", "linear", "tiered", "capped", "credits"],
    )
    def test_non_decreasing(self, clause):
        hours = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0]
        penalties = [clause.monthly_penalty(h) for h in hours]
        assert penalties == sorted(penalties)
        assert penalties[0] == 0.0
