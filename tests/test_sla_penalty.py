"""Penalty clauses: linear (Eq. 5) plus the extension shapes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    PenaltyClause,
    ServiceCreditPenalty,
    TieredPenalty,
)

try:
    import numpy as np  # noqa: F811
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

requires_numpy = pytest.mark.skipif(
    np is None, reason="numpy not installed (the [vector] extra)"
)


class TestNoPenalty:
    def test_always_zero(self):
        clause = NoPenalty()
        assert clause.monthly_penalty(0.0) == 0.0
        assert clause.monthly_penalty(100.0) == 0.0

    def test_rejects_negative_slippage(self):
        with pytest.raises(ValidationError):
            NoPenalty().monthly_penalty(-1.0)


class TestLinearPenalty:
    def test_paper_shape(self):
        clause = LinearPenalty(100.0)
        assert clause.monthly_penalty(3.5) == pytest.approx(350.0)

    def test_zero_slippage_is_free(self):
        assert LinearPenalty(100.0).monthly_penalty(0.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValidationError):
            LinearPenalty(-1.0)

    def test_describe_shows_rate(self):
        assert "100" in LinearPenalty(100.0).describe()


class TestTieredPenalty:
    @pytest.fixture
    def clause(self):
        return TieredPenalty(((2.0, 100.0), (8.0, 250.0), (float("inf"), 500.0)))

    def test_within_first_tier(self, clause):
        assert clause.monthly_penalty(1.0) == pytest.approx(100.0)

    def test_spanning_two_tiers(self, clause):
        # 2h @ 100 + 3h @ 250.
        assert clause.monthly_penalty(5.0) == pytest.approx(200.0 + 750.0)

    def test_open_ended_tail(self, clause):
        # 2h @ 100 + 8h @ 250 + 10h @ 500.
        assert clause.monthly_penalty(20.0) == pytest.approx(200 + 2000 + 5000)

    def test_closed_final_tier_extends_last_rate(self):
        clause = TieredPenalty(((2.0, 100.0),))
        # Beyond the only (closed) tier the final rate keeps applying.
        assert clause.monthly_penalty(5.0) == pytest.approx(200.0 + 300.0)

    def test_monotone(self, clause):
        values = [clause.monthly_penalty(h) for h in (0.0, 1.0, 3.0, 10.0, 50.0)]
        assert values == sorted(values)

    def test_rejects_empty_tiers(self):
        with pytest.raises(ValidationError):
            TieredPenalty(())

    def test_rejects_infinite_middle_tier(self):
        with pytest.raises(ValidationError):
            TieredPenalty(((float("inf"), 100.0), (2.0, 50.0)))

    def test_rejects_zero_width_tier(self):
        with pytest.raises(ValidationError):
            TieredPenalty(((0.0, 100.0),))


class TestCappedPenalty:
    def test_caps_inner_clause(self):
        clause = CappedPenalty(LinearPenalty(100.0), monthly_cap=500.0)
        assert clause.monthly_penalty(3.0) == pytest.approx(300.0)
        assert clause.monthly_penalty(10.0) == pytest.approx(500.0)

    def test_zero_cap_silences_everything(self):
        clause = CappedPenalty(LinearPenalty(100.0), monthly_cap=0.0)
        assert clause.monthly_penalty(99.0) == 0.0

    def test_rejects_negative_cap(self):
        with pytest.raises(ValidationError):
            CappedPenalty(LinearPenalty(100.0), monthly_cap=-1.0)

    def test_describe_mentions_cap(self):
        clause = CappedPenalty(LinearPenalty(100.0), monthly_cap=500.0)
        assert "500" in clause.describe()


class TestServiceCreditPenalty:
    @pytest.fixture
    def clause(self):
        return ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25)))

    def test_below_first_threshold(self, clause):
        assert clause.monthly_penalty(1.0) == 0.0

    def test_first_credit_band(self, clause):
        assert clause.monthly_penalty(2.0) == pytest.approx(500.0)

    def test_highest_band_wins(self, clause):
        assert clause.monthly_penalty(50.0) == pytest.approx(1250.0)

    def test_step_function_not_interpolated(self, clause):
        assert clause.monthly_penalty(9.99) == pytest.approx(500.0)

    def test_rejects_decreasing_thresholds(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ((5.0, 0.1), (2.0, 0.2)))

    def test_rejects_decreasing_fractions(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ((2.0, 0.3), (5.0, 0.1)))

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ((2.0, 1.5),))

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValidationError):
            ServiceCreditPenalty(1000.0, ())


class TestMonotonicityContract:
    """Every clause must be non-decreasing (the pruning rule needs it)."""

    @pytest.mark.parametrize(
        "clause",
        [
            NoPenalty(),
            LinearPenalty(50.0),
            TieredPenalty(((1.0, 10.0), (float("inf"), 100.0))),
            CappedPenalty(LinearPenalty(100.0), monthly_cap=400.0),
            ServiceCreditPenalty(2000.0, ((1.0, 0.05), (5.0, 0.2))),
        ],
        ids=["none", "linear", "tiered", "capped", "credits"],
    )
    def test_non_decreasing(self, clause):
        hours = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0]
        penalties = [clause.monthly_penalty(h) for h in hours]
        assert penalties == sorted(penalties)
        assert penalties[0] == 0.0


# -- vector evaluation: byte-identical to the scalar methods ---------------

rates = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)

#: NaN-free, non-negative slippage arrays, including the empty array and
#: denormal/tiny magnitudes where float rounding differences would show.
slippage_arrays = st.lists(
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False,
              allow_infinity=False),
    min_size=0,
    max_size=64,
)


@st.composite
def penalty_clauses(draw):
    """Any of the five clause shapes with random parameters."""
    which = draw(st.integers(min_value=0, max_value=4))
    if which == 0:
        return NoPenalty()
    if which == 1:
        return LinearPenalty(draw(rates))
    if which == 2:
        widths = draw(
            st.lists(
                st.floats(min_value=0.5, max_value=24.0), min_size=1, max_size=4
            )
        )
        tier_rates = draw(
            st.lists(rates, min_size=len(widths), max_size=len(widths))
        )
        open_ended = draw(st.booleans())
        tiers = list(zip(widths, tier_rates))
        if open_ended:
            tiers[-1] = (float("inf"), tiers[-1][1])
        return TieredPenalty(tuple(tiers))
    if which == 3:
        return CappedPenalty(LinearPenalty(draw(rates)), monthly_cap=draw(rates))
    thresholds = sorted(
        set(
            draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=100.0),
                    min_size=1,
                    max_size=4,
                )
            )
        )
    )
    fractions = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=len(thresholds),
                max_size=len(thresholds),
            )
        )
    )
    return ServiceCreditPenalty(
        draw(st.floats(min_value=0.0, max_value=100_000.0)),
        tuple(zip(thresholds, fractions)),
    )


@requires_numpy
class TestVectorByteIdentity:
    """``monthly_penalty_vector`` must equal the scalar loop bit-for-bit.

    The vector backend's correctness contract is *byte identity*, not
    approximate equality: every float the vector path produces must have
    the same bit pattern as the scalar method's result, so serial and
    vector backends stay interchangeable in golden-file comparisons.
    """

    @staticmethod
    def assert_bit_identical(clause, hours_list):
        vector = clause.monthly_penalty_vector(np.array(hours_list, dtype=float))
        assert vector.dtype == np.float64
        assert vector.shape == (len(hours_list),)
        scalar = [clause.monthly_penalty(h) for h in hours_list]
        assert [v.hex() for v in vector.tolist()] == [s.hex() for s in scalar]

    @given(clause=penalty_clauses(), hours=slippage_arrays)
    @settings(max_examples=300)
    def test_any_shape_matches_scalar(self, clause, hours):
        self.assert_bit_identical(clause, hours)

    @given(hours=slippage_arrays)
    def test_no_penalty(self, hours):
        self.assert_bit_identical(NoPenalty(), hours)

    @given(rate=rates, hours=slippage_arrays)
    def test_linear(self, rate, hours):
        self.assert_bit_identical(LinearPenalty(rate), hours)

    @given(hours=slippage_arrays)
    def test_tiered_open_tail(self, hours):
        clause = TieredPenalty(
            ((2.0, 100.0), (8.0, 250.0), (float("inf"), 500.0))
        )
        self.assert_bit_identical(clause, hours)

    @given(hours=slippage_arrays)
    def test_tiered_closed_tail_extends_last_rate(self, hours):
        self.assert_bit_identical(TieredPenalty(((2.0, 100.0),)), hours)

    @given(cap=rates, rate=rates, hours=slippage_arrays)
    def test_capped(self, cap, rate, hours):
        clause = CappedPenalty(LinearPenalty(rate), monthly_cap=cap)
        self.assert_bit_identical(clause, hours)

    @given(hours=slippage_arrays)
    def test_service_credits(self, hours):
        clause = ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25)))
        self.assert_bit_identical(clause, hours)

    def test_empty_array(self):
        for clause in (
            NoPenalty(),
            LinearPenalty(50.0),
            TieredPenalty(((1.0, 10.0), (float("inf"), 100.0))),
            CappedPenalty(LinearPenalty(100.0), monthly_cap=400.0),
            ServiceCreditPenalty(2000.0, ((1.0, 0.05), (5.0, 0.2))),
        ):
            result = clause.monthly_penalty_vector(np.zeros(0, dtype=float))
            assert result.shape == (0,)
            assert result.dtype == np.float64

    def test_results_are_nan_free(self):
        # The tiered kernel must not evaluate dead lanes (0.0 * inf -> NaN).
        clause = TieredPenalty(((1.0, 10.0), (float("inf"), 100.0)))
        hours = np.array([0.0, 0.5, 1.0, 5.0, 1e308], dtype=float)
        assert not np.isnan(clause.monthly_penalty_vector(hours)).any()

    @given(hours=slippage_arrays)
    def test_base_class_fallback_loops_scalar(self, hours):
        class Quadratic(NoPenalty):
            # Custom subclasses that only override the scalar method must
            # still be vector-correct via the base-class fallback loop.
            monthly_penalty_vector = PenaltyClause.monthly_penalty_vector

            def monthly_penalty(self, slippage_hours):
                return 2.0 * slippage_hours * slippage_hours

        self.assert_bit_identical(Quadratic(), hours)

    def test_rejects_negative_entries(self):
        clause = LinearPenalty(50.0)
        with pytest.raises(ValidationError):
            clause.monthly_penalty_vector(np.array([1.0, -0.5], dtype=float))
