"""Property-based tests on the availability model (Eq. 1-4)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.cluster_math import up_probability
from repro.availability.model import evaluate_availability
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec

# -- strategies -------------------------------------------------------------

probabilities = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
failure_rates = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
failover_times = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)


@st.composite
def cluster_shapes(draw):
    """(total_nodes, standby_tolerance) with 0 <= K-hat < K <= 8."""
    total = draw(st.integers(min_value=1, max_value=8))
    tolerance = draw(st.integers(min_value=0, max_value=total - 1))
    return total, tolerance


@st.composite
def clusters(draw, name="c", layer=Layer.COMPUTE):
    total, tolerance = draw(cluster_shapes())
    node = NodeSpec(
        kind="n",
        down_probability=draw(probabilities),
        failures_per_year=draw(failure_rates),
    )
    failover = draw(failover_times) if tolerance > 0 else 0.0
    return ClusterSpec(
        name, layer, node, total_nodes=total,
        standby_tolerance=tolerance, failover_minutes=failover,
    )


@st.composite
def systems(draw, max_clusters=4):
    count = draw(st.integers(min_value=1, max_value=max_clusters))
    layer_cycle = [Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK, Layer.OTHER]
    built = tuple(
        draw(clusters(name=f"c{i}", layer=layer_cycle[i % 4]))
        for i in range(count)
    )
    from repro.topology.system import SystemTopology

    return SystemTopology("prop", built)


# -- properties -------------------------------------------------------------


class TestClusterMathProperties:
    @given(shape=cluster_shapes(), p=probabilities)
    def test_up_probability_is_probability(self, shape, p):
        total, tolerance = shape
        value = up_probability(total, tolerance, p)
        assert 0.0 <= value <= 1.0

    @given(shape=cluster_shapes(), p=probabilities)
    def test_up_probability_at_least_all_up(self, shape, p):
        # The all-nodes-up term is always included in the sum.
        total, tolerance = shape
        assert up_probability(total, tolerance, p) >= (1.0 - p) ** total - 1e-12

    @given(shape=cluster_shapes(), p=probabilities)
    def test_more_tolerance_never_hurts(self, shape, p):
        total, tolerance = shape
        if tolerance + 1 >= total:
            return
        assert up_probability(total, tolerance + 1, p) >= (
            up_probability(total, tolerance, p) - 1e-12
        )

    @given(shape=cluster_shapes(), p=probabilities)
    def test_monotone_in_node_reliability(self, shape, p):
        total, tolerance = shape
        worse = min(p + 0.1, 0.99)
        assert up_probability(total, tolerance, p) >= (
            up_probability(total, tolerance, worse) - 1e-12
        )


class TestSystemProperties:
    @given(system=systems())
    @settings(max_examples=150)
    def test_probabilities_in_range(self, system):
        report = evaluate_availability(system)
        assert 0.0 <= report.breakdown_probability <= 1.0
        assert report.failover_probability >= 0.0
        assert report.uptime_probability <= 1.0

    @given(system=systems())
    @settings(max_examples=150)
    def test_ds_decomposition(self, system):
        report = evaluate_availability(system)
        assert report.downtime_probability == (
            report.breakdown_probability + report.failover_probability
        )

    @given(system=systems())
    @settings(max_examples=100)
    def test_uptime_bounded_by_breakdown_availability(self, system):
        # U_s <= 1 - B_s always (F_s only subtracts).
        report = evaluate_availability(system)
        assert report.uptime_probability <= 1.0 - report.breakdown_probability + 1e-12

    @given(system=systems(max_clusters=3), extra=clusters(name="extra"))
    @settings(max_examples=100)
    def test_serial_chain_never_gains_from_extra_cluster(self, system, extra):
        # Adding any cluster to a serial chain cannot raise breakdown
        # availability.
        from repro.topology.system import SystemTopology

        extended = SystemTopology("ext", system.clusters + (extra,))
        base = evaluate_availability(system)
        longer = evaluate_availability(extended)
        assert longer.breakdown_probability >= base.breakdown_probability - 1e-12

    @given(system=systems())
    @settings(max_examples=100)
    def test_report_deterministic(self, system):
        first = evaluate_availability(system)
        second = evaluate_availability(system)
        assert first.uptime_probability == second.uptime_probability
