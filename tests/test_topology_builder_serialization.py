"""TopologyBuilder and JSON (de)serialization."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError, ValidationError
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import Layer
from repro.topology.node import NodeSpec
from repro.topology.serialization import (
    cluster_from_dict,
    cluster_to_dict,
    node_from_dict,
    node_to_dict,
    system_from_dict,
    system_from_json,
    system_to_dict,
    system_to_json,
)


@pytest.fixture
def node() -> NodeSpec:
    return NodeSpec("host", 0.01, 4.0, 100.0)


class TestBuilder:
    def test_builds_layers_in_order(self, node):
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=3)
            .storage("st", node, nodes=1)
            .network("n", node, nodes=1)
            .other("x", node, nodes=2)
            .build()
        )
        assert [cluster.layer for cluster in system] == [
            Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK, Layer.OTHER,
        ]

    def test_rejects_empty_name(self):
        with pytest.raises(TopologyError):
            TopologyBuilder("")

    def test_passes_ha_kwargs_through(self, node):
        system = (
            TopologyBuilder("s")
            .compute(
                "c", node, nodes=4, standby_tolerance=1,
                failover_minutes=10.0, ha_technology="hv",
            )
            .build()
        )
        cluster = system.cluster("c")
        assert cluster.has_ha
        assert cluster.ha_technology == "hv"

    def test_builder_is_chainable(self, node):
        builder = TopologyBuilder("s")
        assert builder.compute("c", node, nodes=1) is builder


class TestNodeSerialization:
    def test_roundtrip(self, node):
        assert node_from_dict(node_to_dict(node)) == node

    def test_rejects_unknown_keys(self, node):
        payload = node_to_dict(node)
        payload["bogus"] = 1
        with pytest.raises(ValidationError, match="bogus"):
            node_from_dict(payload)


class TestClusterSerialization:
    def test_roundtrip(self, node):
        system = (
            TopologyBuilder("s")
            .storage(
                "st", node, nodes=2, standby_tolerance=1,
                failover_minutes=1.0, ha_technology="raid-1",
                monthly_ha_infra_cost=50.0, monthly_ha_labor_hours=2.0,
            )
            .build()
        )
        cluster = system.cluster("st")
        assert cluster_from_dict(cluster_to_dict(cluster)) == cluster

    def test_rejects_unknown_layer(self, node):
        system = TopologyBuilder("s").compute("c", node, nodes=1).build()
        payload = cluster_to_dict(system.cluster("c"))
        payload["layer"] = "quantum"
        with pytest.raises(ValidationError, match="quantum"):
            cluster_from_dict(payload)


class TestSystemSerialization:
    def test_dict_roundtrip(self, node):
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=3)
            .storage("st", node, nodes=1)
            .build()
        )
        assert system_from_dict(system_to_dict(system)) == system

    def test_json_roundtrip(self, node):
        system = TopologyBuilder("s").compute("c", node, nodes=3).build()
        assert system_from_json(system_to_json(system)) == system

    def test_json_is_deterministic(self, node):
        system = TopologyBuilder("s").compute("c", node, nodes=3).build()
        assert system_to_json(system) == system_to_json(system)

    def test_rejects_bad_json(self):
        with pytest.raises(ValidationError, match="invalid topology JSON"):
            system_from_json("{not json")

    def test_rejects_wrong_schema_version(self, node):
        payload = system_to_dict(
            TopologyBuilder("s").compute("c", node, nodes=1).build()
        )
        payload["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema_version"):
            system_from_dict(payload)

    def test_embeds_schema_version(self, node):
        payload = system_to_dict(
            TopologyBuilder("s").compute("c", node, nodes=1).build()
        )
        assert payload["schema_version"] == 1
