"""BrokerService end-to-end plus requests, rate cards and marketplace."""

from __future__ import annotations

import pytest

from repro.broker.marketplace import compare_providers
from repro.broker.ratecard import registry_for_provider
from repro.broker.request import (
    ClusterRequirement,
    RecommendationRequest,
    three_tier_request,
)
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers, metalcloud
from repro.errors import BrokerError, InsufficientTelemetryError, ValidationError
from repro.sla.contract import Contract
from repro.topology.cluster import Layer


@pytest.fixture(scope="module")
def observed_broker() -> BrokerService:
    """A broker that has watched all three providers for 5 synthetic years."""
    broker = BrokerService(all_providers())
    broker.observe_all(years=5.0, seed=11)
    return broker


@pytest.fixture
def contract() -> Contract:
    return Contract.linear(98.0, 100.0)


class TestRequestValidation:
    def test_three_tier_helper(self, contract):
        request = three_tier_request(contract)
        assert [c.layer for c in request.clusters] == [
            Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK,
        ]

    def test_component_kind_mapping(self, contract):
        request = three_tier_request(contract)
        assert [c.component_kind for c in request.clusters] == [
            "vm", "volume", "gateway",
        ]

    def test_rejects_duplicate_cluster_names(self, contract):
        with pytest.raises(ValidationError, match="duplicate"):
            RecommendationRequest(
                system_name="s",
                clusters=(
                    ClusterRequirement("a", Layer.COMPUTE, 1),
                    ClusterRequirement("a", Layer.STORAGE, 1),
                ),
                contract=contract,
            )

    def test_rejects_unknown_strategy(self, contract):
        with pytest.raises(ValidationError, match="strategy"):
            three_tier_request(contract, strategy="quantum")

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValidationError):
            ClusterRequirement("a", Layer.COMPUTE, 0)


class TestRateCardRegistry:
    def test_builds_case_study_choices(self):
        registry = registry_for_provider(metalcloud())
        assert registry.lookup("hypervisor-n+1", Layer.COMPUTE)
        assert registry.lookup("raid-1", Layer.STORAGE)
        assert registry.lookup("dual-gateway", Layer.NETWORK)

    def test_failover_estimates_flow_through(self):
        registry = registry_for_provider(
            metalcloud(), failover_minutes={"vm": 99.0}
        )
        assert registry.lookup("hypervisor-n+1", Layer.COMPUTE).failover_minutes == 99.0

    def test_extended_catalog_widens_choices(self):
        narrow = registry_for_provider(metalcloud())
        wide = registry_for_provider(metalcloud(), extended=True)
        assert len(wide.choices_for_layer(Layer.STORAGE)) > len(
            narrow.choices_for_layer(Layer.STORAGE)
        )

    def test_addon_prices_from_rate_card(self):
        registry = registry_for_provider(metalcloud())
        raid = registry.lookup("raid-1", Layer.STORAGE)
        assert raid.monthly_controller_cost == 30.0


class TestBrokerService:
    def test_needs_providers(self):
        with pytest.raises(BrokerError):
            BrokerService(())

    def test_rejects_duplicate_providers(self):
        with pytest.raises(BrokerError, match="duplicate"):
            BrokerService((metalcloud(), metalcloud()))

    def test_unknown_provider_lookup(self, observed_broker):
        with pytest.raises(BrokerError, match="registered"):
            observed_broker.provider("nimbus")

    def test_unobserved_broker_cannot_recommend(self, contract):
        broker = BrokerService((metalcloud(),))
        with pytest.raises(InsufficientTelemetryError):
            broker.recommend(three_tier_request(contract))

    def test_recommend_covers_all_providers(self, observed_broker, contract):
        report = observed_broker.recommend(three_tier_request(contract))
        names = {rec.provider_name for rec in report.recommendations}
        assert names == {"metalcloud", "stratus", "cumulus"}

    def test_provider_subset_respected(self, observed_broker, contract):
        request = three_tier_request(contract, providers=("stratus",))
        report = observed_broker.recommend(request)
        assert [rec.provider_name for rec in report.recommendations] == ["stratus"]

    def test_metalcloud_reproduces_paper_recommendation(self, observed_broker, contract):
        """With telemetry-estimated inputs the broker still lands on the
        paper's option #3 for the metalcloud (SoftLayer-like) provider."""
        report = observed_broker.recommend(three_tier_request(contract))
        metalcloud_best = report.for_provider("metalcloud").result.best
        assert metalcloud_best.clustered_components == ("storage",)

    def test_strategies_agree(self, observed_broker, contract):
        by_strategy = {}
        for strategy in ("pruned", "brute-force", "branch-and-bound"):
            request = three_tier_request(contract, strategy=strategy)
            report = observed_broker.recommend(request)
            by_strategy[strategy] = report.for_provider("metalcloud").result.best.tco.total
        assert len({round(v, 6) for v in by_strategy.values()}) == 1

    def test_materialized_topology_uses_estimates(self, observed_broker, contract):
        request = three_tier_request(contract)
        topology = observed_broker.materialize_topology(
            request, observed_broker.provider("metalcloud")
        )
        node = topology.cluster("compute").node
        truth = observed_broker.provider("metalcloud").reliability.triple("vm")[0]
        assert node.down_probability == pytest.approx(truth, rel=0.25)

    def test_report_best_is_cheapest_total(self, observed_broker, contract):
        report = observed_broker.recommend(three_tier_request(contract))
        assert report.best.monthly_total == min(
            rec.monthly_total for rec in report.recommendations
        )

    def test_describe_ranks_providers(self, observed_broker, contract):
        text = observed_broker.recommend(three_tier_request(contract)).describe()
        assert "place on" in text


class TestMarketplace:
    def test_ranked_by_total(self, observed_broker, contract):
        comparison = compare_providers(
            observed_broker, three_tier_request(contract)
        )
        totals = [entry.monthly_total for entry in comparison.ranked]
        assert totals == sorted(totals)

    def test_winner_is_first(self, observed_broker, contract):
        comparison = compare_providers(
            observed_broker, three_tier_request(contract)
        )
        assert comparison.winner is comparison.ranked[0]

    def test_premium_over_winner(self, observed_broker, contract):
        comparison = compare_providers(
            observed_broker, three_tier_request(contract)
        )
        assert comparison.premium_over_winner(
            comparison.winner.provider_name
        ) == 0.0
        last = comparison.ranked[-1].provider_name
        assert comparison.premium_over_winner(last) == pytest.approx(comparison.spread)

    def test_unknown_provider_premium(self, observed_broker, contract):
        comparison = compare_providers(
            observed_broker, three_tier_request(contract)
        )
        with pytest.raises(BrokerError):
            comparison.premium_over_winner("nimbus")

    def test_describe_is_ranked_table(self, observed_broker, contract):
        text = compare_providers(
            observed_broker, three_tier_request(contract)
        ).describe()
        assert "1." in text and "2." in text and "3." in text


class TestSeedDeterminism:
    """Regression: one int seed pins the whole observation pipeline."""

    @staticmethod
    def _observe(seed):
        broker = BrokerService((metalcloud(),))
        events = broker.observe_provider("metalcloud", years=1.0, seed=seed)
        estimates = {
            kind: broker.knowledge_base.estimate("metalcloud", kind)
            for kind in ("vm", "volume", "gateway")
        }
        return broker, events, estimates

    def test_observe_provider_reproducible_from_int_seed(self):
        _, events_a, estimates_a = self._observe(1234)
        _, events_b, estimates_b = self._observe(1234)
        assert events_a == events_b
        for kind in estimates_a:
            assert estimates_a[kind].down_probability == (
                estimates_b[kind].down_probability
            )
            assert estimates_a[kind].failures_per_year == (
                estimates_b[kind].failures_per_year
            )

    def test_different_seeds_diverge(self):
        _, events_a, estimates_a = self._observe(1)
        _, events_b, estimates_b = self._observe(2)
        assert any(
            estimates_a[kind].down_probability
            != estimates_b[kind].down_probability
            for kind in estimates_a
        ) or events_a != events_b

    def test_broker_rng_normalizes_like_make_rng(self):
        from repro.broker.service import broker_rng
        from repro.rng import make_rng

        assert broker_rng(77).random() == make_rng(77).random()
        shared = make_rng(5)
        assert broker_rng(shared) is shared

    def test_observe_all_reproducible_end_to_end(self, contract):
        def run():
            broker = BrokerService(all_providers())
            broker.observe_all(years=1.0, seed=42)
            return broker.recommend(three_tier_request(contract)).describe()

        assert run() == run()

    def test_recommendation_reports_engine_stats(self, observed_broker, contract):
        report = observed_broker.recommend(three_tier_request(contract))
        for recommendation in report.recommendations:
            assert recommendation.engine_stats is not None
            assert recommendation.engine_stats.candidate_evaluations > 0
            assert recommendation.engine_stats.topology_evaluations == 0
