"""Uncertainty propagation: delta method, TCO bands, confidence."""

from __future__ import annotations

import math
import random

import pytest

from repro.availability.model import evaluate_availability
from repro.availability.uncertainty import (
    ClusterInputUncertainty,
    propagate_uptime_uncertainty,
    recommendation_confidence,
    tco_band,
)
from repro.errors import ValidationError
from repro.sla.contract import Contract
from repro.topology.node import NodeSpec
from repro.workloads.case_study import case_study_base_system


@pytest.fixture
def system():
    return case_study_base_system()


@pytest.fixture
def uniform_uncertainty(system):
    return {
        name: ClusterInputUncertainty(sigma_down_probability=0.001)
        for name in system.cluster_names
    }


class TestPropagation:
    def test_zero_inputs_give_zero_stderr(self, system):
        result = propagate_uptime_uncertainty(system, {})
        assert result.uptime_stderr == 0.0
        assert result.uptime_mean == pytest.approx(
            evaluate_availability(system).uptime_probability
        )

    def test_stderr_positive_with_inputs(self, system, uniform_uncertainty):
        result = propagate_uptime_uncertainty(system, uniform_uncertainty)
        assert result.uptime_stderr > 0.0

    def test_variance_decomposes(self, system, uniform_uncertainty):
        result = propagate_uptime_uncertainty(system, uniform_uncertainty)
        assert result.uptime_stderr**2 == pytest.approx(
            sum(result.variance_by_cluster.values())
        )

    def test_more_input_error_more_output_error(self, system):
        def stderr(sigma):
            uncertainties = {
                name: ClusterInputUncertainty(sigma_down_probability=sigma)
                for name in system.cluster_names
            }
            return propagate_uptime_uncertainty(system, uncertainties).uptime_stderr

        assert stderr(0.002) > stderr(0.0005)

    def test_ci_brackets_mean(self, system, uniform_uncertainty):
        result = propagate_uptime_uncertainty(system, uniform_uncertainty)
        low, high = result.ci95
        assert low <= result.uptime_mean <= high

    def test_unknown_cluster_rejected(self, system):
        with pytest.raises(ValidationError, match="unknown clusters"):
            propagate_uptime_uncertainty(
                system, {"mars": ClusterInputUncertainty()}
            )

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            ClusterInputUncertainty(sigma_down_probability=-0.1)

    def test_delta_method_matches_parameter_resampling(self, system):
        """The first-order stderr agrees with brute-force resampling of
        the inputs (the ground truth the delta method approximates)."""
        sigma = 0.0015
        uncertainties = {
            "compute": ClusterInputUncertainty(sigma_down_probability=sigma)
        }
        predicted = propagate_uptime_uncertainty(system, uncertainties)

        rng = random.Random(13)
        node = system.cluster("compute").node
        samples = []
        for _ in range(4000):
            perturbed = max(node.down_probability + rng.gauss(0.0, sigma), 0.0)
            resampled = system.replace_cluster(
                "compute",
                system.cluster("compute").__class__(
                    **{
                        **{
                            "name": "compute",
                            "layer": system.cluster("compute").layer,
                            "node": NodeSpec(
                                node.kind, perturbed, node.failures_per_year,
                                node.monthly_cost,
                            ),
                            "total_nodes": system.cluster("compute").total_nodes,
                        },
                    }
                ),
            )
            samples.append(
                evaluate_availability(resampled).uptime_probability
            )
        mean = sum(samples) / len(samples)
        empirical = math.sqrt(
            sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
        )
        assert predicted.uptime_stderr == pytest.approx(empirical, rel=0.1)

    def test_dominant_cluster_identified(self, system):
        uncertainties = {
            "storage": ClusterInputUncertainty(sigma_down_probability=0.01),
            "network": ClusterInputUncertainty(sigma_down_probability=0.0001),
        }
        result = propagate_uptime_uncertainty(system, uncertainties)
        assert result.dominant_cluster == "storage"


class TestTcoBand:
    def test_band_ordering(self, system, uniform_uncertainty):
        uncertainty = propagate_uptime_uncertainty(system, uniform_uncertainty)
        band = tco_band(260.0, Contract.linear(98.0, 100.0), uncertainty)
        assert band.tco_high_uptime <= band.tco_at_mean <= band.tco_low_uptime
        assert band.spread >= 0.0

    def test_sla_met_band_collapses(self, system):
        # With uptime far above the SLA the whole CI pays no penalty.
        uncertainty = propagate_uptime_uncertainty(system, {})
        band = tco_band(100.0, Contract.linear(50.0, 100.0), uncertainty)
        assert band.spread == 0.0
        assert band.tco_at_mean == 100.0


class TestRecommendationConfidence:
    def test_huge_gap_is_certain(self):
        assert recommendation_confidence(100.0, 1.0, 1000.0, 1.0) == (
            pytest.approx(1.0, abs=1e-9)
        )

    def test_tie_with_noise_is_even(self):
        assert recommendation_confidence(100.0, 5.0, 100.0, 5.0) == 0.5

    def test_zero_noise_is_deterministic(self):
        assert recommendation_confidence(100.0, 0.0, 200.0, 0.0) == 1.0
        assert recommendation_confidence(200.0, 0.0, 100.0, 0.0) == 0.0
        assert recommendation_confidence(100.0, 0.0, 100.0, 0.0) == 0.5

    def test_symmetry(self):
        forward = recommendation_confidence(100.0, 10.0, 130.0, 10.0)
        backward = recommendation_confidence(130.0, 10.0, 100.0, 10.0)
        assert forward + backward == pytest.approx(1.0)

    def test_more_noise_less_confidence(self):
        crisp = recommendation_confidence(100.0, 1.0, 150.0, 1.0)
        noisy = recommendation_confidence(100.0, 100.0, 150.0, 100.0)
        assert crisp > noisy > 0.5

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValidationError):
            recommendation_confidence(1.0, -1.0, 2.0, 0.0)


class TestEstimateStderrs:
    def test_knowledge_base_exposes_stderrs(self):
        from repro.broker.service import BrokerService
        from repro.cloud.providers import metalcloud

        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=4.0, seed=43)
        estimate = broker.knowledge_base.estimate("metalcloud", "volume")
        assert estimate.down_probability_stderr > 0.0
        assert estimate.failures_per_year_stderr > 0.0
        assert estimate.failover_minutes_stderr > 0.0

    def test_stderr_shrinks_with_observation(self):
        from repro.broker.service import BrokerService
        from repro.cloud.providers import metalcloud

        def stderr(years):
            broker = BrokerService((metalcloud(),))
            broker.observe_provider("metalcloud", years=years, seed=47)
            return broker.knowledge_base.estimate(
                "metalcloud", "volume"
            ).failures_per_year_stderr

        assert stderr(20.0) < stderr(1.0)

    def test_input_uncertainty_bridge(self):
        from repro.broker.service import BrokerService
        from repro.cloud.providers import metalcloud

        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=4.0, seed=53)
        estimate = broker.knowledge_base.estimate("metalcloud", "vm")
        record = estimate.input_uncertainty()
        assert record.sigma_down_probability == estimate.down_probability_stderr
