"""Protocol hardening: idempotent replay, rate limiting, token auth.

Unit tests drive :mod:`repro.server.hardening` and the client's
circuit breaker directly (injected clocks, no sockets); the end-to-end
classes run live servers per concern — a plain one for replay
semantics, an authenticated one, a rate-limited one — because each
guard changes what every request on the shared server sees.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import socket
import threading

import pytest

from repro.broker.envelope import ErrorEnvelope, RecommendEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.errors import ValidationError
from repro.server import (
    IDEMPOTENCY_KEY_HEADER,
    REPLAY_HEADER,
    SERVED_ROUTES,
    IdempotencyStore,
    RateLimiter,
    ServerClient,
    ServerError,
    authenticate,
    principal_for,
    start_in_thread,
)
from repro.server.client import CircuitBreaker, CircuitOpenError
from repro.server.hardening import MAX_IDEMPOTENCY_KEY_LENGTH, StoredResponse
from repro.server.ingest import ExposureRecord
from repro.sla.contract import Contract
from repro.units import MINUTES_PER_YEAR

OBSERVE_YEARS = 1.0
SEED = 23
TOKEN = "s3cret-conformance-token"

REPLAY = REPLAY_HEADER.lower()

# The CI gateway leg runs this file with REPRO_WORKERS=2, which makes
# start_in_thread spawn a GatewayServer; tests that reach into the
# in-process server's internals only make sense at workers=0.
GATEWAY_WORKERS = int(os.environ.get("REPRO_WORKERS", "0") or "0")
inprocess_only = pytest.mark.skipif(
    GATEWAY_WORKERS > 0,
    reason="asserts in-process server internals",
)


def observed_broker() -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=OBSERVE_YEARS, seed=SEED)
    return broker


def request(sla: float = 98.0, penalty: float = 100.0, **kwargs):
    return three_tier_request(Contract.linear(sla, penalty), **kwargs)


@pytest.fixture(scope="module")
def handle():
    """A plain hardened server: idempotency on, no auth, no limiter."""
    with start_in_thread(observed_broker(), shards=2) as server_handle:
        yield server_handle


@pytest.fixture(scope="module")
def client(handle):
    return ServerClient(handle.host, handle.port)


class _Clock:
    """An advanceable fake for ``clock_fn`` injection."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- idempotency store (unit) ------------------------------------------------

def _stored(n: int = 0) -> StoredResponse:
    return StoredResponse(200, "application/json", b'{"n": %d}' % n)


def _key(suffix: str) -> tuple[str, str, str, str]:
    return ("addr:t", "jobs", "key", suffix)


class TestIdempotencyStore:
    def test_claim_commit_replay_round_trip(self):
        async def run():
            store = IdempotencyStore(capacity=4)
            action, future = store.begin(_key("a"))
            assert action == "claim"
            store.commit(_key("a"), future, _stored(1))
            action, entry = store.begin(_key("a"))
            assert action == "replay"
            assert entry.body == b'{"n": 1}'
            assert store.replays == 1
            assert len(store) == 1

        asyncio.run(run())

    def test_waiter_receives_leader_commit(self):
        async def run():
            store = IdempotencyStore()
            _, future = store.begin(_key("a"))
            action, waited = store.begin(_key("a"))
            assert action == "wait"
            store.commit(_key("a"), future, _stored(7))
            assert (await waited).body == b'{"n": 7}'

        asyncio.run(run())

    def test_abandon_releases_waiters_to_re_race(self):
        async def run():
            store = IdempotencyStore()
            _, future = store.begin(_key("a"))
            _, waited = store.begin(_key("a"))
            store.abandon(_key("a"), future)
            assert await waited is None
            # Failed executions are never recorded: the next arrival
            # claims afresh instead of replaying a poisoned response.
            action, _ = store.begin(_key("a"))
            assert action == "claim"
            assert len(store) == 0

        asyncio.run(run())

    def test_eviction_is_lru_over_completed_entries(self):
        async def run():
            store = IdempotencyStore(capacity=2)
            for n in ("a", "b"):
                _, future = store.begin(_key(n))
                store.commit(_key(n), future, _stored())
            store.begin(_key("a"))  # refresh "a" to most-recent
            _, future = store.begin(_key("c"))
            store.commit(_key("c"), future, _stored())
            assert store.evictions == 1
            assert store.begin(_key("b"))[0] == "claim"  # evicted
            assert store.begin(_key("a"))[0] == "replay"  # survived

        asyncio.run(run())

    def test_inflight_claims_are_never_evicted(self):
        async def run():
            store = IdempotencyStore(capacity=1)
            _, inflight = store.begin(_key("slow"))
            for n in ("a", "b", "c"):
                _, future = store.begin(_key(n))
                store.commit(_key(n), future, _stored())
            # The slow leader's claim survived three evict passes.
            assert store.begin(_key("slow"))[0] == "wait"
            store.abandon(_key("slow"), inflight)

        asyncio.run(run())

    def test_capacity_is_validated(self):
        with pytest.raises(ValidationError):
            IdempotencyStore(capacity=0)


# -- rate limiter (unit) -----------------------------------------------------

class TestRateLimiter:
    def test_burst_then_limited_then_refill(self):
        ticker = _Clock()
        limiter = RateLimiter(rate=2.0, burst=3, clock_fn=ticker)
        assert [limiter.check("p") for _ in range(3)] == [0.0, 0.0, 0.0]
        retry_after = limiter.check("p")
        assert retry_after == pytest.approx(0.5)  # (1 - 0) / 2 req/s
        assert limiter.limited == 1
        ticker.advance(0.5)  # exactly one token refilled
        assert limiter.check("p") == 0.0

    def test_refill_is_capped_at_burst(self):
        ticker = _Clock()
        limiter = RateLimiter(rate=100.0, burst=2, clock_fn=ticker)
        ticker.advance(3600.0)
        assert limiter.check("p") == 0.0
        assert limiter.check("p") == 0.0
        assert limiter.check("p") > 0.0

    def test_principals_are_independent(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock_fn=_Clock())
        assert limiter.check("alpha") == 0.0
        assert limiter.check("alpha") > 0.0
        assert limiter.check("beta") == 0.0
        assert len(limiter) == 2

    def test_principal_table_is_bounded_lru(self):
        limiter = RateLimiter(
            rate=1.0, burst=1, max_principals=2, clock_fn=_Clock()
        )
        for name in ("a", "b", "c"):
            limiter.check(name)
        assert len(limiter) == 2
        # "a" was evicted; churn cannot grow the table without bound,
        # and an evicted principal restarts with a full bucket.
        assert limiter.check("a") == 0.0

    def test_rate_is_validated(self):
        with pytest.raises(ValidationError):
            RateLimiter(rate=0.0)
        with pytest.raises(ValidationError):
            RateLimiter(rate=5.0, burst=0)


# -- auth (unit) -------------------------------------------------------------

class TestAuthenticate:
    def test_missing_credential_is_401(self):
        failure = authenticate("secret", {})
        assert failure is not None and failure.status == 401
        assert failure.error == "unauthorized"

    def test_malformed_scheme_is_401(self):
        failure = authenticate("secret", {"authorization": "Basic abc"})
        assert failure is not None and failure.status == 401

    def test_wrong_token_is_403(self):
        failure = authenticate("secret", {"authorization": "Bearer nope"})
        assert failure is not None and failure.status == 403
        assert failure.error == "forbidden"

    def test_valid_token_passes(self):
        assert authenticate("secret", {"authorization": "Bearer secret"}) is None

    def test_principal_hashes_the_token(self):
        principal = principal_for(
            {"authorization": "Bearer secret"}, "1.2.3.4", True
        )
        assert principal.startswith("token:")
        assert "secret" not in principal

    def test_principal_falls_back_to_peer_address(self):
        assert principal_for({}, "1.2.3.4", False) == "addr:1.2.3.4"
        assert principal_for({}, "1.2.3.4", True) == "addr:1.2.3.4"


# -- circuit breaker (unit) --------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0, clock_fn=_Clock())
        for _ in range(2):
            breaker.record_failure()
        breaker.admit()  # still closed below the threshold
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError, match="next probe"):
            breaker.admit()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock_fn=_Clock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        ticker = _Clock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock_fn=ticker)
        breaker.record_failure()
        ticker.advance(5.0)
        assert breaker.state == "half-open"
        breaker.admit()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.admit()  # concurrent caller during the probe

    def test_probe_outcome_closes_or_reopens(self):
        ticker = _Clock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock_fn=ticker)
        breaker.record_failure()
        ticker.advance(5.0)
        breaker.admit()
        breaker.record_failure()  # probe failed: open for another cooldown
        assert breaker.state == "open"
        ticker.advance(5.0)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_parameters_are_validated(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(cooldown=0.0)


# -- client retry policy vs the served route table ---------------------------

class TestRetryPolicyMatchesRouteTable:
    """The client's automatic-replay set must stay honest about what
    this server actually serves (the PR-5 lesson, now asserted)."""

    def test_idempotent_methods_hold_no_unsafe_verbs(self):
        assert ServerClient.IDEMPOTENT_METHODS == {"GET", "HEAD", "OPTIONS"}

    def test_no_served_mutation_rides_the_idempotent_set(self):
        served_methods = {method for method, _ in SERVED_ROUTES}
        assert served_methods == {"GET", "POST"}
        assert served_methods & ServerClient.IDEMPOTENT_METHODS == {"GET"}
        # PUT/DELETE are neither served nor granted automatic replay —
        # adding such a route must consciously revisit both sets.
        assert not {"PUT", "DELETE", "PATCH"} & ServerClient.IDEMPOTENT_METHODS

    def test_route_table_matches_the_live_server(self, client):
        for method, pattern in SERVED_ROUTES:
            path = pattern.replace("{id}", "probe-id")
            status, body = client.request_raw(
                method, path, "{}" if method == "POST" else None
            )
            assert status != 405, f"{method} {pattern} not served"
            if status >= 400:
                envelope = ErrorEnvelope.from_json(body)
                assert envelope.error != "unknown-route", (
                    f"{method} {pattern} missing from the live router"
                )


# -- idempotent replay (end to end) ------------------------------------------

class TestIdempotentReplay:
    def _post(self, client, path, payload, key=None):
        body = dict(payload)
        if key is not None:
            body["idempotency_key"] = key
        status, text = client.request_raw("POST", path, json.dumps(body))
        return status, text, client.last_response_headers.get(REPLAY)

    def test_keyed_recommend_replays_byte_identically(self, client):
        payload = RecommendEnvelope(
            request(), request_id="replay-rec", idempotency_key="rec-key-1"
        ).to_json()
        first_status, first = client.request_raw(
            "POST", "/v2/recommend", payload
        )
        assert client.last_response_headers.get(REPLAY) is None
        second_status, second = client.request_raw(
            "POST", "/v2/recommend", payload
        )
        assert (first_status, second_status) == (200, 200)
        assert second == first  # byte-identical, not recomputed
        assert client.last_response_headers.get(REPLAY) == "true"

    @inprocess_only
    def test_keyed_submit_creates_exactly_one_job(self, handle, client):
        payload = RecommendEnvelope(
            request(), idempotency_key="job-key-1"
        ).to_json()
        jobs_before = len(handle.server.session.jobs())
        _, first = client.request_raw("POST", "/v2/jobs", payload)
        _, second = client.request_raw("POST", "/v2/jobs", payload)
        assert json.loads(second)["job_id"] == json.loads(first)["job_id"]
        assert client.last_response_headers.get(REPLAY) == "true"
        assert len(handle.server.session.jobs()) == jobs_before + 1

    def test_header_keyed_ingest_routes_records_once(self, client):
        line = json.dumps({
            "kind": "exposure",
            "provider": "metalcloud",
            "component_kind": "vm",
            "node_count": 4,
            "horizon_minutes": 2 * MINUTES_PER_YEAR,
        })
        headers = {IDEMPOTENCY_KEY_HEADER: "ingest-key-1"}
        _, first = client.request_raw(
            "POST", "/v2/ingest", line, headers=headers
        )
        _, second = client.request_raw(
            "POST", "/v2/ingest", line, headers=headers
        )
        assert second == first
        assert client.last_response_headers.get(REPLAY) == "true"

    def test_distinct_keys_execute_independently(self, client):
        job_ids = set()
        for key in ("fresh-a", "fresh-b"):
            payload = RecommendEnvelope(
                request(), idempotency_key=key
            ).to_json()
            _, text = client.request_raw("POST", "/v2/jobs", payload)
            assert client.last_response_headers.get(REPLAY) is None
            job_ids.add(json.loads(text)["job_id"])
        assert len(job_ids) == 2

    def test_error_responses_are_not_pinned_under_the_key(self, client):
        payload = RecommendEnvelope(request(), idempotency_key="err-key-1")
        broken = payload.to_dict()
        broken["request"] = {"bogus": 1}
        status, _, replayed = self._post(client, "/v2/recommend", broken)
        assert status == 400
        status, _, replayed = self._post(client, "/v2/recommend", broken)
        assert status == 400
        # The failure was abandoned, not stored: the retry re-executed.
        assert replayed is None

    def test_oversized_key_is_rejected_with_400(self, client):
        status, body = client.request_raw(
            "POST",
            "/v2/recommend",
            RecommendEnvelope(request()).to_json(),
            headers={
                IDEMPOTENCY_KEY_HEADER: "k" * (MAX_IDEMPOTENCY_KEY_LENGTH + 1)
            },
        )
        assert status == 400
        assert "character limit" in ErrorEnvelope.from_json(body).message

    @inprocess_only
    def test_unkeyed_requests_bypass_the_replay_table(self, handle, client):
        payload = RecommendEnvelope(request()).to_json()
        jobs_before = len(handle.server.session.jobs())
        _, first = client.request_raw("POST", "/v2/jobs", payload)
        _, second = client.request_raw("POST", "/v2/jobs", payload)
        assert json.loads(first)["job_id"] != json.loads(second)["job_id"]
        assert len(handle.server.session.jobs()) == jobs_before + 2

    def test_replay_metrics_are_exported(self, client):
        payload = RecommendEnvelope(
            request(), idempotency_key="metrics-key-1"
        ).to_json()
        client.request_raw("POST", "/v2/recommend", payload)
        client.request_raw("POST", "/v2/recommend", payload)
        samples = client.metrics()
        key = ("repro_idempotent_replays_total", (("route", "recommend"),))
        assert samples[key] >= 1.0
        assert samples[("repro_idempotency_entries", ())] >= 1.0


# -- job-result replay after retrieval/eviction (the S2 hole) ----------------

class TestJobResultReplay:
    @inprocess_only
    def test_retrieved_then_evicted_result_still_replays(self):
        """A retried GET …/result after the first terminal answer must
        replay even once the retrieved job is evicted from the table —
        before hardening this 404'd, which made the client's "GET is
        idempotent" retry silently unsafe."""
        with start_in_thread(observed_broker(), shards=2) as server_handle:
            wire = ServerClient(server_handle.host, server_handle.port)
            session = server_handle.server.session
            session.max_finished_jobs = 1
            first_job = wire.submit(RecommendEnvelope(request()))
            wire.result(first_job)
            status, first = wire.request_raw(
                "GET", f"/v2/jobs/{first_job}/result"
            )
            assert status == 200
            # Retrieve a second job, then submit a third: the submit's
            # eviction pass now sees two retrieved jobs over the cap of
            # one and drops the oldest — the first job.
            second_job = wire.submit(RecommendEnvelope(request(97.0)))
            wire.result(second_job)
            wire.submit(RecommendEnvelope(request(96.5)))
            assert all(
                job.job_id != first_job for job in session.jobs()
            ), "eviction precondition not met"
            status, replayed = wire.request_raw(
                "GET", f"/v2/jobs/{first_job}/result"
            )
            assert status == 200
            assert replayed == first
            assert wire.last_response_headers.get(REPLAY) == "true"

    def test_pending_202_is_never_stored_for_replay(self, client):
        job_id = client.submit(RecommendEnvelope(request(96.0)))
        status, _ = client.request_raw("GET", f"/v2/jobs/{job_id}/result")
        if status == 202:
            # The job was still running: the 202 must not have been
            # committed, or this terminal read would replay it forever.
            client.result(job_id)
        status, _ = client.request_raw("GET", f"/v2/jobs/{job_id}/result")
        assert status == 200


# -- concurrent duplicate submission (first-writer-wins) ---------------------

class TestConcurrentDuplicates:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @inprocess_only
    def test_racing_duplicate_submissions_yield_one_job(self, backend):
        with start_in_thread(
            observed_broker(), shards=2, eval_backend=backend
        ) as server_handle:
            payload = RecommendEnvelope(
                request(), idempotency_key=f"race-key-{backend}"
            ).to_json()
            barrier = threading.Barrier(2)
            outcomes: list[tuple[str, str | None]] = []

            def submit() -> None:
                wire = ServerClient(server_handle.host, server_handle.port)
                barrier.wait()
                _, text = wire.request_raw("POST", "/v2/jobs", payload)
                outcomes.append((
                    json.loads(text)["job_id"],
                    wire.last_response_headers.get(REPLAY),
                ))

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert len(outcomes) == 2
            job_ids = {job_id for job_id, _ in outcomes}
            assert len(job_ids) == 1  # first writer won; no duplicate
            session = server_handle.server.session
            assert len(session.jobs()) == 1
            # Exactly one execution: the other response was replayed
            # (either from the in-flight future or the stored entry).
            markers = [marker for _, marker in outcomes]
            assert markers.count("true") == 1
            report = ServerClient(
                server_handle.host, server_handle.port
            ).result(job_ids.pop())
            assert report.best.best.meets_sla


# -- keyed POST retry over the PR-5 drop harness ----------------------------

class _ProcessThenDropServer:
    """The PR-5 stale-keep-alive shape: every request is processed, but
    only the first per connection is answered — the second's response
    is dropped after the server has acted."""

    def __init__(self) -> None:
        self.processed: list[str] = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.2)
        self.host, self.port = self._sock.getsockname()
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def __enter__(self) -> "_ProcessThenDropServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self._closing = True
        self._thread.join(timeout=5.0)
        self._sock.close()

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        served = 0
        with conn:
            while True:
                head = self._read_request(conn)
                if head is None:
                    return
                self.processed.append(head)
                served += 1
                if served >= 2:
                    return  # process, then drop: no response bytes
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 2\r\n\r\n{}"
                )

    def _read_request(self, conn: socket.socket) -> str | None:
        buffer = b""
        while b"\r\n\r\n" not in buffer:
            try:
                data = conn.recv(65536)
            except OSError:
                return None
            if not data:
                return None
            buffer += data
        head, _, body = buffer.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        method, path = lines[0].split()[:2]
        length = 0
        for line in lines[1:]:
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(body) < length:
            data = conn.recv(65536)
            if not data:
                return None
            body += data
        return f"{method.decode()} {path.decode()}"


class TestKeyedRetrySemantics:
    """With replay on the server, the PR-5 client restriction lifts:
    a keyed POST is retried after a lost response; an unkeyed one is
    still surfaced (covered in test_server_transport.py)."""

    def test_keyed_post_is_retried_after_response_phase_failure(self):
        with _ProcessThenDropServer() as server:
            wire = ServerClient(server.host, server.port, timeout=5.0)
            status, _ = wire.request_raw(
                "POST", "/v2/jobs", '{"n": 1}', idempotent_replay=True
            )
            assert status == 200
            status, _ = wire.request_raw(
                "POST", "/v2/jobs", '{"n": 2}', idempotent_replay=True
            )
            # The drop is survived: resent on a fresh connection (where
            # it is request #1 and gets answered).  A real server would
            # have replayed the recorded response for the same key.
            assert status == 200
            assert server.processed == [
                "POST /v2/jobs",
                "POST /v2/jobs",  # processed, response dropped
                "POST /v2/jobs",  # transparent keyed resend
            ]

    @inprocess_only
    def test_retried_keyed_submit_reaches_one_job_end_to_end(self, handle):
        """The same-key resend the drop harness exercises, replayed
        against the real server: the duplicate is deduplicated."""
        wire = ServerClient(handle.host, handle.port)
        payload = RecommendEnvelope(
            request(), idempotency_key="resend-key-1"
        ).to_json()
        jobs_before = len(handle.server.session.jobs())
        first = wire.request_raw(
            "POST", "/v2/jobs", payload, idempotent_replay=True
        )
        wire.close()  # simulate the dropped connection before the resend
        second = wire.request_raw(
            "POST", "/v2/jobs", payload, idempotent_replay=True
        )
        assert second == first
        assert len(handle.server.session.jobs()) == jobs_before + 1

    def test_typed_submit_stamps_a_key_and_survives_resend(self, handle):
        wire = ServerClient(handle.host, handle.port)
        envelope = wire._as_envelope(RecommendEnvelope(request()))
        assert envelope.idempotency_key is not None
        first = wire.submit(envelope)
        second = wire.submit(envelope)  # same envelope = same key
        assert second == first


# -- auth (end to end) -------------------------------------------------------

@pytest.fixture(scope="module")
def auth_handle():
    with start_in_thread(
        observed_broker(), shards=2, auth_token=TOKEN
    ) as server_handle:
        yield server_handle


class TestAuthEndToEnd:
    def test_missing_token_is_401_envelope(self, auth_handle):
        bare = ServerClient(auth_handle.host, auth_handle.port)
        with pytest.raises(ServerError) as excinfo:
            bare.recommend(RecommendEnvelope(request()))
        assert excinfo.value.status == 401
        assert excinfo.value.envelope.error == "unauthorized"
        assert bare.last_response_headers.get("www-authenticate") == "Bearer"

    def test_wrong_token_is_403_envelope(self, auth_handle):
        wire = ServerClient(
            auth_handle.host, auth_handle.port, auth_token="wrong"
        )
        with pytest.raises(ServerError) as excinfo:
            wire.recommend(RecommendEnvelope(request()))
        assert excinfo.value.status == 403

    def test_valid_token_serves_recommendations(self, auth_handle):
        wire = ServerClient(
            auth_handle.host, auth_handle.port, auth_token=TOKEN
        )
        report = wire.recommend(RecommendEnvelope(request(), request_id="a-1"))
        assert report.request_id == "a-1"

    def test_health_and_metrics_stay_open_for_probes(self, auth_handle):
        bare = ServerClient(auth_handle.host, auth_handle.port)
        assert bare.health()["status"] == "ok"
        assert "repro_http_requests_total" in bare.metrics_text()

    def test_auth_failures_are_counted(self, auth_handle):
        bare = ServerClient(auth_handle.host, auth_handle.port)
        with pytest.raises(ServerError):
            bare.poll("some-job")
        wire = ServerClient(
            auth_handle.host, auth_handle.port, auth_token=TOKEN
        )
        samples = wire.metrics()
        assert samples[
            ("repro_auth_failures_total", (("status", "401"),))
        ] >= 1.0

    def test_empty_auth_token_is_rejected_at_startup(self):
        with pytest.raises(ValidationError):
            start_in_thread(observed_broker(), auth_token="")


# -- rate limiting (end to end) ----------------------------------------------

class TestRateLimitEndToEnd:
    def test_burst_overflow_is_429_with_retry_after(self):
        with start_in_thread(
            observed_broker(), shards=2, rate_limit=5.0, rate_limit_burst=3
        ) as server_handle:
            wire = ServerClient(
                server_handle.host, server_handle.port, rate_limit_budget=0.0
            )
            status, body = wire.request_raw("GET", "/v2/jobs/probe")
            assert status == 404  # the burst is served first
            for _ in range(20):
                status, body = wire.request_raw("GET", "/v2/jobs/probe")
                if status == 429:
                    break
            assert status == 429
            envelope = ErrorEnvelope.from_json(body)
            assert envelope.error == "rate-limited"
            retry_after = float(
                wire.last_response_headers["retry-after"]
            )
            assert retry_after > 0.0
            # Exempt probes are never limited; the counter is exported.
            assert wire.health()["status"] == "ok"
            samples = wire.metrics()
            limited = sum(
                value
                for (name, _), value in samples.items()
                if name == "repro_rate_limited_total"
            )
            assert limited >= 1.0
            assert samples[("repro_rate_limit_principals", ())] >= 1.0

    def test_client_sleeps_out_retry_after_within_budget(self):
        with start_in_thread(
            observed_broker(), shards=2, rate_limit=50.0, rate_limit_burst=2
        ) as server_handle:
            wire = ServerClient(
                server_handle.host, server_handle.port, rate_limit_budget=5.0
            )
            # 8 rapid calls through a 2-token bucket: the client must
            # absorb every 429 by sleeping out Retry-After.
            statuses = {
                wire.request_raw("GET", "/v2/jobs/probe")[0]
                for _ in range(8)
            }
            assert statuses == {404}  # 429s were absorbed, never surfaced


# -- circuit breaker (end to end) --------------------------------------------

class TestCircuitBreakerEndToEnd:
    def test_breaker_fails_fast_after_connect_failures(self):
        sock = socket.create_server(("127.0.0.1", 0))
        _, port = sock.getsockname()
        sock.close()  # nothing listens here any more
        wire = ServerClient(
            "127.0.0.1",
            port,
            timeout=0.5,
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )
        for _ in range(2):
            with pytest.raises(OSError):
                wire.request_raw("GET", "/healthz")
        assert wire.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            wire.request_raw("GET", "/healthz")

    def test_breaker_closes_after_successful_probe(self, handle):
        wire = ServerClient(
            handle.host,
            handle.port,
            breaker_threshold=1,
            breaker_cooldown=60.0,
        )
        wire.breaker.record_failure()
        assert wire.breaker.state == "open"
        wire.breaker._opened_at = wire.breaker._clock() - 61.0
        assert wire.breaker.state == "half-open"
        assert wire.health()["status"] == "ok"  # the admitted probe
        assert wire.breaker.state == "closed"


# -- Content-Type on empty bodies (the S1 wire regression) -------------------

class _RecordingServer:
    """Answers 200 to everything; records each request's raw head."""

    def __init__(self) -> None:
        self.heads: list[bytes] = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.2)
        self.host, self.port = self._sock.getsockname()
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def __enter__(self) -> "_RecordingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self._closing = True
        self._thread.join(timeout=5.0)
        self._sock.close()

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            with conn:
                buffer = b""
                while b"\r\n\r\n" not in buffer:
                    data = conn.recv(65536)
                    if not data:
                        break
                    buffer += data
                if buffer:
                    self.heads.append(buffer.partition(b"\r\n\r\n")[0])
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Length: 2\r\n"
                        b"Connection: close\r\n\r\n{}"
                    )


class TestContentTypeOnTheWire:
    def test_empty_body_still_carries_content_type(self):
        """``if body`` treated ``b\"\"`` as no-body and dropped the
        header; the guard is now ``body is not None``."""
        with _RecordingServer() as server:
            wire = ServerClient(server.host, server.port, timeout=5.0)
            status, _ = wire.request_raw("POST", "/v2/ingest", b"")
            assert status == 200
            head = server.heads[0].lower()
            assert b"content-type: application/json" in head
            assert b"content-length: 0" in head

    def test_absent_body_sends_no_content_type(self):
        with _RecordingServer() as server:
            wire = ServerClient(server.host, server.port, timeout=5.0)
            wire.request_raw("GET", "/healthz")
            assert b"content-type" not in server.heads[0].lower()
