"""End-to-end request tracing through the serving stack.

The propagation acceptance tests for ``repro.obs``: a traced request
issued through :class:`ServerClient` must yield exactly one trace whose
span tree covers transport -> session -> engine -> backend chunk (and
the megabatch block when stacking), with monotonic nested timings —
retrievable via both ``GET /v2/traces/{id}`` and ``repro trace``.  Also
pins the envelope's ``trace`` wire field, the disabled-tracing surface
(404 + no header + byte-identity) and the slow-request log.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.broker.envelope import RecommendEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cli.main import main
from repro.cloud.providers import all_providers
from repro.errors import ValidationError
from repro.obs.trace import (
    SpanContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.server import ServerClient, ServerError, start_in_thread
from repro.server.transport import BrokerServer
from repro.sla.contract import Contract

OBSERVE_YEARS = 1.0
SEED = 23


def observed_broker() -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=OBSERVE_YEARS, seed=SEED)
    return broker


def request(**kwargs):
    return three_tier_request(Contract.linear(98.0, 100.0), **kwargs)


@pytest.fixture(scope="module")
def traced_handle():
    with start_in_thread(observed_broker(), trace=True) as handle:
        yield handle


@pytest.fixture()
def traced_client(traced_handle):
    return ServerClient(traced_handle.host, traced_handle.port, trace=True)


def spans_by_name(spans):
    table = {}
    for span in spans:
        table.setdefault(span.name, []).append(span)
    return table


class TestEnvelopeTraceField:
    def test_trace_field_round_trips(self):
        traceparent = format_traceparent(
            SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        )
        envelope = RecommendEnvelope(
            request(), request_id="t-1", trace=traceparent
        )
        decoded = RecommendEnvelope.from_json(envelope.to_json())
        assert decoded.trace == traceparent
        assert decoded.request_id == "t-1"

    def test_trace_defaults_to_none_and_emits_on_wire(self):
        envelope = RecommendEnvelope(request())
        assert envelope.trace is None
        assert json.loads(envelope.to_json())["trace"] is None

    def test_unknown_keys_still_rejected(self):
        payload = json.loads(RecommendEnvelope(request()).to_json())
        payload["tracing"] = "typo"
        with pytest.raises(ValidationError, match="tracing"):
            RecommendEnvelope.from_dict(payload)

    def test_non_string_trace_rejected(self):
        with pytest.raises(ValidationError):
            RecommendEnvelope(request(), trace=123)


class TestTracedRecommendPipeline:
    @pytest.mark.parametrize("backend", ["process", "vector"])
    def test_client_to_worker_span_continuity(self, backend):
        """Acceptance: one trace spanning transport->session->engine->chunk."""
        with start_in_thread(
            observed_broker(), trace=True, eval_backend=backend, max_workers=2
        ) as handle:
            client = ServerClient(handle.host, handle.port, trace=True)
            client.recommend(request(strategy="brute-force", backend=backend))
            trace_id = client.last_trace_id
            assert trace_id is not None
            spans = client.trace_spans(trace_id)

        assert {s.trace_id for s in spans} == {trace_id}
        named = spans_by_name(spans)
        for phase in ("request", "parse", "evaluate", "backend_chunk"):
            assert phase in named, f"missing {phase} spans: {sorted(named)}"
        if backend == "process":
            assert "worker_evaluate" in named

        # The tree is fully connected: every non-root parent is recorded.
        recorded = {s.span_id for s in spans}
        (root,) = named["request"]
        for span in spans:
            if span is root:
                continue
            assert span.parent_id in recorded

        # Nested timings are monotone: children within their parents.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            parent = by_id.get(span.parent_id)
            if parent is None:
                continue
            assert parent.start <= span.start <= span.end <= parent.end

    def test_client_stamped_traceparent_becomes_the_trace_id(
        self, traced_client
    ):
        traced_client.recommend(request())
        envelope_ctx = None  # stamped inside _as_envelope; recover from id
        trace_id = traced_client.last_trace_id
        spans = traced_client.trace_spans(trace_id)
        (root,) = [s for s in spans if s.name == "request"]
        # The root is parented to the client's stamped span id (which
        # was never recorded server-side), proving propagation.
        assert root.parent_id is not None

    def test_trace_listed_in_summaries(self, traced_client):
        traced_client.recommend(request())
        trace_id = traced_client.last_trace_id
        listing = traced_client.traces(limit=500)
        assert trace_id in {t["trace_id"] for t in listing["traces"]}
        assert listing["dropped"] >= 0

    def test_min_duration_filters(self, traced_client):
        traced_client.recommend(request())
        listing = traced_client.traces(min_duration=3600.0)
        assert listing["traces"] == []

    def test_unknown_trace_id_404(self, traced_client):
        with pytest.raises(ServerError) as excinfo:
            traced_client.trace_spans("f" * 32)
        assert excinfo.value.status == 404

    def test_job_submission_parents_job_span(self, traced_client):
        job_id = traced_client.submit(request())
        trace_id = traced_client.last_trace_id
        traced_client.result(job_id)
        spans = spans_by_name(traced_client.trace_spans(trace_id))
        (root,) = spans["request"]
        assert root.attrs["route"] == "jobs"
        (job,) = spans["job"]
        assert job.parent_id == root.span_id
        assert job.attrs["status"] == "done"
        # Under a gateway the ingress hop records its own queue_wait
        # spans parented to the request root; the job's is the one
        # parented to the job span.
        (queue_wait,) = [
            s for s in spans["queue_wait"] if s.parent_id == job.span_id
        ]
        assert queue_wait.end >= queue_wait.start

    def test_traced_error_still_answers_envelope(self, traced_client):
        bad = request()
        envelope = RecommendEnvelope(bad, request_id="boom-1")
        payload = json.loads(envelope.to_json())
        payload["request"]["providers"] = ["no-such-cloud"]
        status, text = traced_client.request_raw(
            "POST", "/v2/recommend", json.dumps(payload)
        )
        assert status == 404
        decoded = json.loads(text)
        assert decoded["error"] == "unknown-name"
        assert decoded["request_id"] == "boom-1"

    def test_metrics_exports_span_histogram(self, traced_client):
        traced_client.recommend(request())
        samples = traced_client.metrics()
        assert (
            samples[
                ("repro_span_duration_seconds_count", (("phase", "request"),))
            ]
            >= 1
        )


class TestMegabatchAttribution:
    def test_followers_cite_the_leader_block(self):
        with start_in_thread(
            observed_broker(),
            trace=True,
            eval_backend="vector",
            megabatch=True,
            megabatch_window=0.05,
            max_workers=4,
        ) as handle:
            clients = [
                ServerClient(handle.host, handle.port, trace=True)
                for _ in range(3)
            ]
            req = request(strategy="brute-force", backend="vector")
            ids = [None] * len(clients)

            def go(index):
                clients[index].recommend(req)
                ids[index] = clients[index].last_trace_id

            threads = [
                threading.Thread(target=go, args=(i,))
                for i in range(len(clients))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            spans = []
            for trace_id in ids:
                assert trace_id is not None
                spans.extend(clients[0].trace_spans(trace_id))

        blocks = [s for s in spans if s.name == "megabatch_block"]
        follows = [s for s in spans if s.name == "megabatch_follow"]
        assert blocks, "no megabatch_block spans recorded"
        block_ids = {b.span_id for b in blocks}
        # Followers cite a leader block that actually ran (cross-trace
        # join key).
        for follow in follows:
            assert follow.attrs["leader_block"] in block_ids
        # Every chunk a request sends through the stacker is attributed:
        # a trace whose backend_chunk spans wrap stacker calls carries a
        # megabatch_block (it led) and/or megabatch_follow (its rows ran
        # in someone else's pass) for them.  A trace with no chunk at
        # all was an engine-result-cache hit that never reached the
        # backend — which happens whenever scheduling serializes the
        # "concurrent" fleet, so it cannot be ruled out.
        names_by_trace = {}
        for span in spans:
            names_by_trace.setdefault(span.trace_id, set()).add(span.name)
        assert set(names_by_trace) == set(ids)
        mega = {"megabatch_block", "megabatch_follow"}
        for names in names_by_trace.values():
            if "backend_chunk" in names:
                assert names & mega
            else:
                assert not names & mega
                assert "evaluate" in names  # served from memoized options


class TestDisabledTracing:
    def test_no_header_and_traces_404(self):
        with start_in_thread(observed_broker()) as handle:
            client = ServerClient(handle.host, handle.port)
            client.recommend(request())
            assert client.last_trace_id is None
            with pytest.raises(ServerError) as excinfo:
                client.traces()
            assert excinfo.value.status == 404
            assert excinfo.value.envelope.error == "tracing-disabled"

    def test_stamped_envelope_ignored_by_untraced_server(self):
        with start_in_thread(observed_broker()) as handle:
            client = ServerClient(handle.host, handle.port, trace=True)
            report = client.recommend(request())
            assert client.last_trace_id is None  # no header came back
            assert report.best.best.meets_sla

    def test_traced_and_untraced_reports_byte_identical(self):
        envelope = RecommendEnvelope(request(), request_id="bit-1")
        with start_in_thread(observed_broker()) as plain:
            expected = (
                ServerClient(plain.host, plain.port)
                .recommend(envelope)
                .to_json()
            )
        with start_in_thread(observed_broker(), trace=True) as traced:
            actual = (
                ServerClient(traced.host, traced.port, trace=True)
                .recommend(envelope)
                .to_json()
            )
        assert actual == expected

    def test_slow_and_profile_flags_require_trace(self):
        broker = observed_broker()
        with pytest.raises(ValidationError, match="requires trace"):
            BrokerServer(broker, slow_request_threshold=1.0)
        with pytest.raises(ValidationError, match="requires trace"):
            BrokerServer(broker, profile_requests=True)


class TestSlowRequestLog:
    def test_slow_requests_logged_with_trace_id(self, caplog):
        with start_in_thread(
            observed_broker(), trace=True, slow_request_threshold=0.0
        ) as handle:
            client = ServerClient(handle.host, handle.port, trace=True)
            with caplog.at_level(logging.WARNING, logger="repro.server"):
                client.recommend(request())
                trace_id = client.last_trace_id
        records = [
            r for r in caplog.records
            if getattr(r, "event", None) == "slow_request"
        ]
        assert records, "no slow-request log emitted"
        record = records[-1]
        assert record.route == "recommend"
        assert record.status == 200
        assert record.trace_id == trace_id
        assert record.seconds >= 0.0


class TestTraceCli:
    def test_cli_lists_and_renders_live_traces(
        self, traced_handle, traced_client, capsys
    ):
        traced_client.recommend(request())
        trace_id = traced_client.last_trace_id
        url = f"http://{traced_handle.host}:{traced_handle.port}"

        assert main(["trace", "--url", url, "--limit", "500"]) == 0
        listing = capsys.readouterr().out
        assert trace_id in listing

        assert main(["trace", "--url", url, trace_id]) == 0
        tree = capsys.readouterr().out
        assert f"trace {trace_id}" in tree
        assert "request" in tree and "evaluate" in tree

    def test_cli_reads_exported_jsonl(
        self, traced_client, tmp_path, capsys
    ):
        traced_client.recommend(request())
        trace_id = traced_client.last_trace_id
        spans = traced_client.trace_spans(trace_id)
        export = tmp_path / "spans.jsonl"
        export.write_text(
            "".join(json.dumps(s.to_dict()) + "\n" for s in spans)
        )

        assert main(["trace", "--file", str(export)]) == 0
        assert trace_id in capsys.readouterr().out

        assert main(["trace", "--file", str(export), trace_id]) == 0
        assert f"trace {trace_id}" in capsys.readouterr().out

    def test_cli_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["trace"]) == 1
        assert "exactly one source" in capsys.readouterr().err
        export = tmp_path / "spans.jsonl"
        export.write_text("")
        assert main(
            ["trace", "--url", "http://127.0.0.1:1", "--file", str(export)]
        ) == 1
