"""Cost model: labor rates, C_HA aggregation, and Eq. 5 TCO."""

from __future__ import annotations

import pytest

from repro.cost.rates import CASE_STUDY_LABOR_RATE, LaborRate
from repro.cost.tco import compute_tco, monthly_ha_cost
from repro.errors import ValidationError
from repro.sla.contract import Contract
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec


@pytest.fixture
def ha_system():
    host = NodeSpec("host", 0.01, 6.0, monthly_cost=200.0)
    disk = NodeSpec("disk", 0.02, 5.0, monthly_cost=80.0)
    return (
        TopologyBuilder("s")
        .compute(
            "c", host, nodes=4, standby_tolerance=1, failover_minutes=10.0,
            monthly_ha_infra_cost=250.0, monthly_ha_labor_hours=4.0,
        )
        .storage(
            "st", disk, nodes=2, standby_tolerance=1, failover_minutes=1.0,
            monthly_ha_infra_cost=100.0, monthly_ha_labor_hours=2.0,
        )
        .build()
    )


class TestLaborRate:
    def test_monthly_cost(self):
        assert LaborRate(30.0).monthly_cost(4.0) == pytest.approx(120.0)

    def test_zero_rate(self):
        assert LaborRate(0.0).monthly_cost(100.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValidationError):
            LaborRate(-1.0)

    def test_rejects_negative_hours(self):
        with pytest.raises(ValidationError):
            LaborRate(30.0).monthly_cost(-1.0)

    def test_case_study_rate_is_30(self):
        assert CASE_STUDY_LABOR_RATE.dollars_per_hour == 30.0


class TestMonthlyHaCost:
    def test_sums_infra_and_prices_labor(self, ha_system):
        infra, labor = monthly_ha_cost(ha_system, LaborRate(30.0))
        assert infra == pytest.approx(350.0)
        assert labor == pytest.approx(6.0 * 30.0)

    def test_bare_system_costs_nothing(self, ha_system):
        infra, labor = monthly_ha_cost(ha_system.strip_ha(), LaborRate(30.0))
        assert infra == 0.0
        assert labor == 0.0


class TestComputeTco:
    def test_breakdown_components_sum(self, ha_system):
        tco = compute_tco(ha_system, Contract.linear(98.0, 100.0), LaborRate(30.0))
        assert tco.total == pytest.approx(
            tco.ha_infra_cost + tco.ha_labor_cost + tco.expected_penalty
        )

    def test_total_with_base_adds_fleet(self, ha_system):
        tco = compute_tco(ha_system, Contract.linear(98.0, 100.0), LaborRate(30.0))
        # 4 hosts x $200 + 2 disks x $80 = $960.
        assert tco.base_infra_cost == pytest.approx(960.0)
        assert tco.total_with_base == pytest.approx(tco.total + 960.0)

    def test_meeting_sla_means_cha_only(self, ha_system):
        # This HA-everywhere system comfortably beats a 90% SLA.
        tco = compute_tco(ha_system, Contract.linear(90.0, 100.0), LaborRate(30.0))
        assert tco.expected_penalty == 0.0
        assert tco.total == pytest.approx(tco.ha_cost)

    def test_slipping_sla_charges_penalty(self, ha_system):
        bare = ha_system.strip_ha()
        tco = compute_tco(bare, Contract.linear(99.9, 100.0), LaborRate(30.0))
        assert tco.expected_penalty > 0.0
        assert tco.slippage_hours > 0.0

    def test_penalty_consistent_with_contract(self, ha_system):
        contract = Contract.linear(99.9, 100.0)
        tco = compute_tco(ha_system, contract, LaborRate(30.0))
        assert tco.expected_penalty == pytest.approx(
            contract.expected_monthly_penalty(tco.uptime_probability)
        )

    def test_higher_penalty_rate_never_cheaper(self, ha_system):
        bare = ha_system.strip_ha()
        cheap = compute_tco(bare, Contract.linear(99.9, 10.0), LaborRate(30.0))
        dear = compute_tco(bare, Contract.linear(99.9, 1000.0), LaborRate(30.0))
        assert dear.total >= cheap.total

    def test_describe_mentions_tco(self, ha_system):
        tco = compute_tco(ha_system, Contract.linear(98.0, 100.0), LaborRate(30.0))
        assert "TCO" in tco.describe()
