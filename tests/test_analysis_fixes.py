"""Regression tests for the defects ``repro lint`` surfaced.

Each test here pins a bug the static rules found in previously-shipped
code (see DESIGN.md § Invariants & static analysis):

* REP004 on ``PoolRegistry.publish``: an exception between creating the
  named SharedMemory segment and registering it leaked an OS-level shm
  file that outlived the process.
* REP004 on ``PoolRegistry.acquire``: ``manager.dict()`` — an RPC into
  the freshly-spawned manager process — ran outside the guard that
  shuts the manager down on failure, leaking the manager process.
* REP005 on ``ProgressEvent``: the streaming event serialized
  (``to_dict``) but could not be parsed back (no ``from_dict``), so
  clients could not round-trip the one wire type the SSE path emits
  (covered in tests/test_broker_api.py with the other envelopes).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.optimizer.pools import (
    PoolRegistry,
    _segment_name,
    _shared_memory,
)

pytestmark = pytest.mark.skipif(
    _shared_memory is None, reason="multiprocessing.shared_memory unavailable"
)


class _ExplodingStats:
    """Stands in for ``registry.stats``: any attribute access raises."""

    def __getattr__(self, name):
        raise RuntimeError("stats backend down")


class _FakeManager:
    """A Manager whose first RPC (``dict()``) fails."""

    instances: list["_FakeManager"] = []

    def __init__(self):
        self.shutdown_called = False
        _FakeManager.instances.append(self)

    def dict(self):
        raise RuntimeError("manager RPC failed")

    def shutdown(self):
        self.shutdown_called = True


class TestPublishLeak:
    def test_publish_failure_unlinks_fresh_segment(self):
        """REP004 regression: no shm leak when registration raises."""
        registry = PoolRegistry(table_backend="shm")
        # White-box: bring the channel up without paying for a real
        # process pool, then make the registration step blow up.
        registry._shm_channel_up = True
        registry.stats = _ExplodingStats()
        uid = 421
        with pytest.raises(RuntimeError, match="stats backend down"):
            registry.publish(uid, {"terms": (1.0, 2.0)})
        # The failed publish must leave neither a registry entry nor an
        # OS-level segment behind.
        assert uid not in registry._segments
        with pytest.raises(FileNotFoundError):
            _shared_memory.SharedMemory(
                name=_segment_name(registry._token, uid)
            )

    def test_publish_retract_still_round_trips(self):
        """The happy path is untouched by the error-path fix."""
        registry = PoolRegistry(table_backend="shm")
        registry._shm_channel_up = True
        uid = 7
        registry.publish(uid, {"terms": (1.0,)})
        assert uid in registry._segments
        assert registry.stats.tables_published == 1
        registry.retract(uid)
        assert uid not in registry._segments
        with pytest.raises(FileNotFoundError):
            _shared_memory.SharedMemory(
                name=_segment_name(registry._token, uid)
            )


class TestAcquireManagerLeak:
    def test_failed_manager_rpc_shuts_manager_down(self, monkeypatch):
        """REP004 regression: the manager process never outlives a
        failed acquire, even when the failure is the table-dict RPC
        rather than pool construction."""
        _FakeManager.instances.clear()
        monkeypatch.setattr(multiprocessing, "Manager", _FakeManager)
        registry = PoolRegistry(table_backend="manager")
        with pytest.raises(RuntimeError, match="manager RPC failed"):
            registry.acquire("process", 1)
        assert len(_FakeManager.instances) == 1
        assert _FakeManager.instances[0].shutdown_called
        # Nothing half-built may linger: no pools, no table channel.
        assert registry.active_pools() == ()
        assert not registry.has_table_channel()
