"""Property-based tests: simulator conservation laws and JSON round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import SimulationOptions, simulate
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.topology.serialization import system_from_json, system_to_json
from repro.topology.system import SystemTopology

probabilities = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)
failure_rates = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
costs = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)


@st.composite
def node_specs(draw):
    return NodeSpec(
        kind=draw(st.text(alphabet="abcdefgh", min_size=1, max_size=8)),
        down_probability=draw(probabilities),
        failures_per_year=draw(failure_rates),
        monthly_cost=draw(costs),
    )


@st.composite
def arbitrary_systems(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    clusters = []
    layers = [Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK, Layer.OTHER]
    for i in range(count):
        total = draw(st.integers(min_value=1, max_value=5))
        tolerance = draw(st.integers(min_value=0, max_value=total - 1))
        clusters.append(
            ClusterSpec(
                name=f"c{i}",
                layer=layers[i % 4],
                node=draw(node_specs()),
                total_nodes=total,
                standby_tolerance=tolerance,
                failover_minutes=(
                    draw(st.floats(min_value=0.0, max_value=30.0))
                    if tolerance > 0
                    else 0.0
                ),
                ha_technology=draw(
                    st.sampled_from(["none", "raid-1", "hypervisor-n+1"])
                ),
                monthly_ha_infra_cost=draw(costs),
                monthly_ha_labor_hours=draw(
                    st.floats(min_value=0.0, max_value=40.0)
                ),
            )
        )
    return SystemTopology("prop", tuple(clusters))


class TestSerializationProperties:
    @given(system=arbitrary_systems())
    @settings(max_examples=100)
    def test_json_roundtrip_is_identity(self, system):
        assert system_from_json(system_to_json(system)) == system

    @given(system=arbitrary_systems())
    @settings(max_examples=50)
    def test_json_stable_across_serializations(self, system):
        assert system_to_json(system) == system_to_json(
            system_from_json(system_to_json(system))
        )


class TestSimulationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p=st.floats(min_value=0.001, max_value=0.2),
        failures=st.floats(min_value=1.0, max_value=24.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_downtime_conserved(self, seed, p, failures):
        """breakdown + failover minutes never exceed the horizon, and
        availability stays in [0, 1]."""
        node = NodeSpec("n", p, failures)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=3, standby_tolerance=1, failover_minutes=5.0)
            .storage("st", node, nodes=1)
            .build()
        )
        metrics = simulate(
            system, SimulationOptions(horizon_minutes=200_000.0, seed=seed)
        )
        assert metrics.downtime_minutes <= metrics.horizon_minutes + 1e-6
        assert 0.0 <= metrics.availability <= 1.0
        assert metrics.breakdown_minutes >= 0.0
        assert metrics.failover_minutes >= 0.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_failover_events_bounded_by_failures(self, seed):
        """A failover requires a node failure, so counts cannot exceed
        total failures observed."""
        from repro.simulation.events import EventKind

        node = NodeSpec("n", 0.05, 20.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=3, standby_tolerance=1, failover_minutes=5.0)
            .build()
        )
        events = []
        metrics = simulate(
            system,
            SimulationOptions(horizon_minutes=300_000.0, seed=seed),
            observer=events.append,
        )
        failures = sum(1 for e in events if e.kind is EventKind.NODE_FAILED)
        assert metrics.failover_events <= failures
