"""The discrete-event engine: determinism, accounting, state machine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import SimulationOptions, simulate
from repro.simulation.events import EventKind
from repro.simulation.processes import NodeProcess
from repro.simulation.state import ClusterState
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.units import MINUTES_PER_YEAR


def one_cluster(p=0.02, failures=12.0, nodes=2, tolerance=1, failover=5.0):
    node = NodeSpec("n", p, failures)
    return (
        TopologyBuilder("s")
        .compute(
            "c", node, nodes=nodes, standby_tolerance=tolerance,
            failover_minutes=failover,
        )
        .build()
    )


class TestNodeProcess:
    def test_steady_state_matches_spec(self):
        node = NodeSpec("n", 0.01, 4.0)
        process = NodeProcess.from_spec(node)
        cycle = process.mean_up_minutes + process.mean_down_minutes
        assert process.mean_down_minutes / cycle == pytest.approx(0.01)

    def test_failure_rate_matches_spec(self):
        node = NodeSpec("n", 0.01, 4.0)
        process = NodeProcess.from_spec(node)
        cycle = process.mean_up_minutes + process.mean_down_minutes
        assert MINUTES_PER_YEAR / cycle == pytest.approx(4.0)

    def test_never_failing_node(self):
        process = NodeProcess.from_spec(NodeSpec("n", 0.0, 0.0))
        assert process.mean_up_minutes == float("inf")

    def test_sampling_is_positive(self):
        import random

        process = NodeProcess.from_spec(NodeSpec("n", 0.01, 4.0))
        rng = random.Random(1)
        assert all(process.sample_up_duration(rng) > 0 for _ in range(100))


class TestClusterState:
    @pytest.fixture
    def spec(self):
        return ClusterSpec(
            "c", Layer.COMPUTE, NodeSpec("n", 0.01, 4.0), total_nodes=3,
            standby_tolerance=1, failover_minutes=10.0,
        )

    def test_initial_state(self, spec):
        state = ClusterState(spec)
        assert state.down_count == 0
        assert not state.is_broken
        assert len(state.active) == 2

    def test_active_failure_triggers_failover(self, spec):
        state = ClusterState(spec)
        active_node = next(iter(state.active))
        assert state.fail_node(active_node, now=0.0) is True
        assert state.failover_until == 10.0
        assert len(state.active) == 2  # standby promoted

    def test_standby_failure_is_silent(self, spec):
        state = ClusterState(spec)
        standby = next(
            index for index in range(3) if index not in state.active
        )
        assert state.fail_node(standby, now=0.0) is False
        assert not state.is_broken

    def test_two_failures_break_cluster(self, spec):
        state = ClusterState(spec)
        state.fail_node(0, now=0.0)
        state.fail_node(1, now=1.0)
        assert state.is_broken
        assert state.breakdown_count == 1

    def test_repair_restores(self, spec):
        state = ClusterState(spec)
        state.fail_node(0, now=0.0)
        state.fail_node(1, now=1.0)
        state.repair_node(0)
        assert not state.is_broken

    def test_double_failure_rejected(self, spec):
        state = ClusterState(spec)
        state.fail_node(0, now=0.0)
        with pytest.raises(SimulationError):
            state.fail_node(0, now=1.0)

    def test_double_repair_rejected(self, spec):
        state = ClusterState(spec)
        with pytest.raises(SimulationError):
            state.repair_node(0)

    def test_no_failover_when_broken(self, spec):
        state = ClusterState(spec)
        state.fail_node(0, now=0.0)
        state.fail_node(1, now=1.0)
        # Third failure happens while broken: no new failover window.
        before = state.failover_count
        state.fail_node(2, now=2.0)
        assert state.failover_count == before


class TestSimulate:
    def test_same_seed_same_result(self):
        system = one_cluster()
        options = SimulationOptions(horizon_minutes=100_000.0, seed=42)
        first = simulate(system, options)
        second = simulate(system, options)
        assert first == second

    def test_different_seeds_differ(self):
        system = one_cluster()
        a = simulate(system, SimulationOptions(horizon_minutes=500_000.0, seed=1))
        b = simulate(system, SimulationOptions(horizon_minutes=500_000.0, seed=2))
        assert a != b

    def test_downtime_bounded_by_horizon(self):
        metrics = simulate(
            one_cluster(p=0.3, failures=50.0),
            SimulationOptions(horizon_minutes=100_000.0, seed=3),
        )
        assert 0.0 <= metrics.downtime_minutes <= metrics.horizon_minutes

    def test_perfect_nodes_never_down(self):
        node = NodeSpec("n", 0.0, 0.0)
        system = TopologyBuilder("s").compute("c", node, nodes=2).build()
        metrics = simulate(system, SimulationOptions(seed=4))
        assert metrics.availability == 1.0
        assert metrics.failover_events == 0

    def test_bare_cluster_has_no_failover_downtime(self):
        system = one_cluster(nodes=2, tolerance=0, failover=0.0)
        metrics = simulate(
            system, SimulationOptions(horizon_minutes=float(MINUTES_PER_YEAR), seed=5)
        )
        assert metrics.failover_minutes == 0.0
        assert metrics.failover_events == 0

    def test_observer_sees_events(self):
        events = []
        simulate(
            one_cluster(p=0.05, failures=20.0),
            SimulationOptions(horizon_minutes=float(MINUTES_PER_YEAR), seed=6),
            observer=events.append,
        )
        kinds = {event.kind for event in events}
        assert EventKind.NODE_FAILED in kinds
        assert EventKind.NODE_REPAIRED in kinds
        assert EventKind.FAILOVER_ENDED in kinds

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(SimulationError):
            SimulationOptions(horizon_minutes=0.0)
