"""The multi-process gateway: framing, routing, byte-identity, respawn.

Unit tests cover the dispatch protocol (frames, partition arithmetic)
with no processes involved.  The end-to-end classes spawn real worker
fleets: a workers=1 gateway is compared byte-for-byte against the
in-process server on twin brokers (the gateway must be an invisible
layer, not a dialect), a workers=2 fleet exercises partitioned serving
and edge-side replay, and the final class kills a worker mid-flight
and waits for the supervisor to respawn it.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.broker.api import BrokerSession
from repro.broker.envelope import RecommendEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.errors import ValidationError
from repro.server import (
    IDEMPOTENCY_KEY_HEADER,
    ServerClient,
    start_in_thread,
)
from repro.server.dispatch import (
    EPOCH_BLOCK,
    MAX_HEADER_BYTES,
    batch_routing_key,
    encode_frame,
    job_id_start,
    job_partition,
    partition_for,
    read_frame,
    routing_key,
)
from repro.server.gateway import GatewayServer
from repro.server.transport import BrokerServer
from repro.sla.contract import Contract

OBSERVE_YEARS = 1.0
SEED = 23


def observed_broker() -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=OBSERVE_YEARS, seed=SEED)
    return broker


def request(sla: float = 98.0, penalty: float = 100.0, **kwargs):
    return three_tier_request(Contract.linear(sla, penalty), **kwargs)


def envelope_json(request_id: str, **kwargs) -> str:
    return RecommendEnvelope(
        request=request(**kwargs), request_id=request_id
    ).to_json()


# -- dispatch framing (unit) -------------------------------------------------

def _read(data: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


class TestFraming:
    def test_round_trip_preserves_header_and_body(self):
        header = {"kind": "request", "id": 7, "path": "/v2/recommend"}
        body = b'{"raw": "bytes \xe2\x9c\x93"}'
        got_header, got_body = _read(encode_frame(header, body))
        assert got_header == header
        assert got_body == body

    def test_empty_body_frames_are_legal(self):
        header, body = _read(encode_frame({"kind": "stream-end", "id": 1}))
        assert header["kind"] == "stream-end"
        assert body == b""

    def test_frames_are_delimited_not_greedy(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_frame({"id": 1}, b"one") + encode_frame({"id": 2}, b"two")
            )
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        (h1, b1), (h2, b2) = asyncio.run(run())
        assert (h1["id"], b1) == (1, b"one")
        assert (h2["id"], b2) == (2, b"two")

    def test_oversized_header_is_rejected_before_allocation(self):
        from repro.server.dispatch import FRAME_PREFIX

        bogus = FRAME_PREFIX.pack(MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ValidationError, match="exceeds"):
            _read(bogus + b"x")

    def test_non_object_header_is_rejected(self):
        payload = json.dumps([1, 2, 3]).encode()
        from repro.server.dispatch import FRAME_PREFIX

        data = FRAME_PREFIX.pack(len(payload), 0) + payload
        with pytest.raises(ValidationError, match="object"):
            _read(data)


# -- partition routing (unit) ------------------------------------------------

class TestPartitionRouting:
    def test_partition_for_is_stable_and_in_range(self):
        for workers in (1, 2, 3, 8):
            for key in ("metalcloud", "a,b", '{"x": 1}'):
                first = partition_for(key, workers)
                assert 0 <= first < workers
                assert partition_for(key, workers) == first

    def test_pinned_providers_route_by_sorted_set(self):
        def body(providers):
            payload = json.loads(envelope_json("r-1"))
            payload["request"]["providers"] = providers
            return json.dumps(payload).encode()

        assert routing_key(body(["b", "a"])) == "a,b"
        assert routing_key(body(["a", "b"])) == "a,b"

    def test_unpinned_requests_route_by_canonical_request(self):
        one = envelope_json("r-1").encode()
        # Same request under a different envelope id routes identically:
        # the engines it warms are keyed by request content, not id.
        two = envelope_json("r-2").encode()
        assert routing_key(one) == routing_key(two)
        assert routing_key(one) is not None

    def test_unparseable_bodies_have_no_key(self):
        assert routing_key(b"{nope") is None
        assert routing_key(b"[1, 2]") is None
        assert routing_key(b'{"request": 5}') is None

    def test_batch_routes_by_first_non_blank_line(self):
        lines = b"\n  \n" + envelope_json("r-1").encode() + b"\n{nope\n"
        assert batch_routing_key(lines) == routing_key(
            envelope_json("r-1").encode()
        )
        assert batch_routing_key(b" \n \n") is None

    def test_job_partition_inverts_strided_minting(self):
        workers = 3
        for index in range(workers):
            for epoch in (0, 1, 5):
                start = job_id_start(index, workers, epoch)
                for k in range(4):
                    minted = f"job-{start + k * workers:06d}"
                    assert job_partition(minted, workers) == index

    def test_job_partition_rejects_foreign_ids(self):
        assert job_partition("job-x", 2) is None
        assert job_partition("nope", 2) is None

    def test_epoch_blocks_never_collide(self):
        # A respawned worker (epoch 1) must not re-mint any id its
        # predecessor (epoch 0) could have issued.
        workers = 2
        epoch0_max = job_id_start(workers - 1, workers, 0) + workers * (
            EPOCH_BLOCK - 1
        )
        assert job_id_start(0, workers, 1) > epoch0_max

    def test_session_mints_strided_ids(self):
        broker = observed_broker()
        session = BrokerSession(
            broker,
            job_id_start=job_id_start(1, 2, 0),
            job_id_stride=2,
        )
        try:
            ids = [session.submit(request()) for _ in range(3)]
        finally:
            session.close()
        assert ids == ["job-000002", "job-000004", "job-000006"]
        assert all(job_partition(job_id, 2) == 1 for job_id in ids)


# -- byte-identity against the in-process server -----------------------------

@pytest.fixture(scope="module")
def twin_handles():
    """Twin brokers (same providers, same observed telemetry), one
    served in-process and one through a workers=1 gateway."""
    with start_in_thread(observed_broker(), workers=0, shards=2) as direct:
        with start_in_thread(observed_broker(), workers=1, shards=2) as gated:
            yield direct, gated


class TestByteIdentity:
    """The gateway is a transport, not a dialect: every route must
    answer byte-identically to the in-process server."""

    @pytest.mark.parametrize(
        ("method", "path", "body"),
        [
            ("POST", "/v2/recommend", envelope_json("bi-1")),
            ("POST", "/v2/recommend", envelope_json("bi-2", compute_nodes=3)),
            ("POST", "/v2/recommend", "{nope"),
            ("GET", "/v2/nowhere", None),
            ("PUT", "/v2/recommend", envelope_json("bi-3")),
            ("POST", "/v2/batch", "  \n "),
            (
                "POST",
                "/v2/batch",
                envelope_json("bi-4") + "\n" + envelope_json("bi-5") + "\n",
            ),
            ("POST", "/v2/ingest", "\n\n"),
        ],
    )
    def test_routes_answer_identical_bytes(
        self, twin_handles, method, path, body
    ):
        direct, gated = twin_handles
        a = ServerClient(direct.host, direct.port)
        b = ServerClient(gated.host, gated.port)
        assert a.request_raw(method, path, body) == b.request_raw(
            method, path, body
        )

    def test_job_lifecycle_is_identical(self, twin_handles):
        direct, gated = twin_handles
        a = ServerClient(direct.host, direct.port)
        b = ServerClient(gated.host, gated.port)
        envelope = RecommendEnvelope(request(), request_id="bi-job-1")
        ids = [client.submit(envelope) for client in (a, b)]
        # Both sides mint from the same start with stride 1, so the
        # counters agree request-for-request.
        assert ids[0] == ids[1]
        job_id = ids[0]
        for client in (a, b):
            deadline = time.monotonic() + 30.0
            while client.poll(job_id) != "done":
                assert time.monotonic() < deadline, "job never finished"
                time.sleep(0.05)
        assert a.request_raw(
            "GET", f"/v2/jobs/{job_id}/result"
        ) == b.request_raw("GET", f"/v2/jobs/{job_id}/result")

    def test_ingest_and_flush_acks_are_identical(self, twin_handles):
        direct, gated = twin_handles
        record = json.dumps(
            {
                "kind": "exposure",
                "provider": "metalcloud",
                "component_kind": "vm",
                "node_count": 4,
                "horizon_minutes": 1000.0,
            }
        )
        a = ServerClient(direct.host, direct.port)
        b = ServerClient(gated.host, gated.port)
        assert a.request_raw(
            "POST", "/v2/ingest", record + "\n"
        ) == b.request_raw("POST", "/v2/ingest", record + "\n")
        assert a.request_raw(
            "POST", "/v2/ingest/flush", ""
        ) == b.request_raw("POST", "/v2/ingest/flush", "")


# -- partitioned fleet (workers=2) -------------------------------------------

@pytest.fixture(scope="module")
def fleet_handle():
    with start_in_thread(observed_broker(), workers=2, shards=2) as handle:
        yield handle


@pytest.fixture()
def fleet_client(fleet_handle):
    return ServerClient(fleet_handle.host, fleet_handle.port)


class TestPartitionedFleet:
    def test_recommend_round_trip(self, fleet_client):
        report = fleet_client.recommend(request())
        assert report.best is not None

    def test_replay_is_edge_side_and_cross_partition(self, fleet_client):
        """Same key, drifted body: the replay decision happens at the
        gateway, before routing can send the retry elsewhere."""
        headers = {IDEMPOTENCY_KEY_HEADER: "gw-replay-1"}
        first = fleet_client.request_raw(
            "POST", "/v2/recommend", envelope_json("gw-r1"), headers=headers
        )
        assert first[0] == 200
        # The drifted body would route to a different partition if the
        # gateway consulted content routing before the replay table.
        drifted = envelope_json("gw-r1", compute_nodes=3)
        second = fleet_client.request_raw(
            "POST", "/v2/recommend", drifted, headers=headers
        )
        assert second == first

    def test_jobs_stride_across_partitions(self, fleet_client):
        job_ids = [
            fleet_client.submit(request(compute_nodes=n))
            for n in (1, 2, 3, 4)
        ]
        partitions = {job_partition(job_id, 2) for job_id in job_ids}
        assert len(job_ids) == len(set(job_ids))
        for job_id in job_ids:
            deadline = time.monotonic() + 30.0
            while fleet_client.poll(job_id) != "done":
                assert time.monotonic() < deadline, f"{job_id} never finished"
                time.sleep(0.05)
            report = fleet_client.result(job_id)
            assert report.best is not None
        # Content routing decides the submitting worker, so a single
        # partition is possible; ids must still decode to valid owners.
        assert partitions <= {0, 1}

    def test_health_reports_the_fleet(self, fleet_client):
        health = fleet_client.health()
        assert health["status"] == "ok"
        fleet = health["workers"]
        assert [w["index"] for w in fleet] == [0, 1]
        assert all(w["alive"] for w in fleet)
        assert all(w["epoch"] == 0 for w in fleet)
        assert len({w["pid"] for w in fleet}) == 2

    def test_metrics_are_merged_not_concatenated(self, fleet_client):
        fleet_client.recommend(request())
        text = fleet_client.metrics_text()
        # One exposition: a family both workers export appears exactly
        # once (samples summed), as does the gateway's own edge family.
        assert text.count("# TYPE repro_engine_cache_hits_total counter") == 1
        assert text.count("# TYPE repro_http_requests_total counter") == 1
        samples = fleet_client.metrics()
        assert samples[("repro_gateway_workers_alive", ())] == 2.0

    def test_batch_streams_through_the_gateway(self, fleet_client):
        body = envelope_json("gw-b1") + "\n" + envelope_json("gw-b2") + "\n"
        status, text = fleet_client.request_raw("POST", "/v2/batch", body)
        assert status == 200
        lines = [line for line in text.splitlines() if line.strip()]
        assert len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert [d["request_id"] for d in decoded] == ["gw-b1", "gw-b2"]


# -- construction and selection ----------------------------------------------

class TestModeSelection:
    def test_workers_zero_is_the_in_process_server(self):
        with start_in_thread(observed_broker(), workers=0) as handle:
            assert isinstance(handle.server, BrokerServer)
            assert not isinstance(handle.server, GatewayServer)

    def test_gateway_requires_at_least_one_worker(self):
        with pytest.raises(ValidationError, match="workers"):
            GatewayServer(observed_broker(), workers=0)


# -- worker death and respawn ------------------------------------------------

class TestWorkerRespawn:
    def test_killed_worker_is_detected_and_respawned(self):
        with start_in_thread(observed_broker(), workers=2, shards=2) as handle:
            client = ServerClient(handle.host, handle.port)
            fleet = client.health()["workers"]
            victim = fleet[0]
            os.kill(victim["pid"], signal.SIGKILL)

            # The supervisor notices the EOF, marks the fleet degraded,
            # then respawns into a fresh epoch with a new pid.
            deadline = time.monotonic() + 60.0
            while True:
                health = client.health()
                worker = health["workers"][0]
                if (
                    health["status"] == "ok"
                    and worker["alive"]
                    and worker["epoch"] == victim["epoch"] + 1
                    and worker["pid"] != victim["pid"]
                ):
                    break
                assert time.monotonic() < deadline, health
                time.sleep(0.2)

            # Every partition serves again — distinct pinned-provider
            # requests spread across both workers.
            providers = sorted(p.name for p in all_providers())
            for name in providers:
                report = client.recommend(request(providers=(name,)))
                assert report.best is not None
