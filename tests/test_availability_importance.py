"""Cluster importance measures (Birnbaum, improvement potential, RAW)."""

from __future__ import annotations

import pytest

from repro.availability.importance import importance_analysis
from repro.errors import ValidationError
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.workloads.case_study import case_study_base_system


@pytest.fixture
def system():
    return (
        TopologyBuilder("s")
        .compute("solid", NodeSpec("a", 0.001, 4.0), nodes=1)
        .storage("weak", NodeSpec("b", 0.05, 4.0), nodes=1)
        .network("middling", NodeSpec("c", 0.01, 4.0), nodes=1)
        .build()
    )


class TestImportance:
    def test_covers_every_cluster(self, system):
        report = importance_analysis(system)
        assert {entry.name for entry in report.clusters} == {
            "solid", "weak", "middling",
        }

    def test_birnbaum_is_product_of_others(self, system):
        report = importance_analysis(system)
        assert report.for_cluster("weak").birnbaum == pytest.approx(
            0.999 * 0.99
        )

    def test_improvement_potential_formula(self, system):
        # IP = (product of others) - (full product).
        report = importance_analysis(system)
        full = 0.999 * 0.95 * 0.99
        assert report.for_cluster("weak").improvement_potential == pytest.approx(
            0.999 * 0.99 - full
        )

    def test_weakest_cluster_is_most_critical(self, system):
        report = importance_analysis(system)
        assert report.most_critical().name == "weak"

    def test_ranking_order(self, system):
        report = importance_analysis(system)
        names = [entry.name for entry in report.ranked_by_improvement()]
        assert names == ["weak", "middling", "solid"]

    def test_serial_raw_is_reciprocal_downtime(self, system):
        report = importance_analysis(system)
        downtime = 1.0 - report.system_availability
        for entry in report.clusters:
            assert entry.risk_achievement_worth == pytest.approx(1.0 / downtime)

    def test_perfect_system_has_infinite_raw(self):
        node = NodeSpec("n", 0.0, 0.0)
        system = TopologyBuilder("p").compute("c", node, nodes=1).build()
        report = importance_analysis(system)
        assert report.clusters[0].risk_achievement_worth == float("inf")

    def test_case_study_priority_is_storage(self):
        # The case study's HA money goes to storage first — importance
        # analysis independently agrees with the TCO optimization.
        report = importance_analysis(case_study_base_system())
        assert report.most_critical().name == "storage"

    def test_unknown_cluster_raises(self, system):
        with pytest.raises(ValidationError):
            importance_analysis(system).for_cluster("nope")

    def test_describe_ranks(self, system):
        text = importance_analysis(system).describe()
        assert text.index("weak") < text.index("solid")

    def test_improvement_bounded_by_downtime(self, system):
        # Perfecting one cluster cannot recover more than total downtime.
        report = importance_analysis(system)
        downtime = 1.0 - report.system_availability
        for entry in report.clusters:
            assert 0.0 <= entry.improvement_potential <= downtime + 1e-12
