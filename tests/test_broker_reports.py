"""Report rendering: the paper-figure formatters."""

from __future__ import annotations

import pytest

from repro.broker.reports import render_option_table, render_summary
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import pruned_optimize


@pytest.fixture(scope="module")
def result(request):
    from repro.workloads.case_study import case_study_problem

    return brute_force_optimize(case_study_problem())


class TestOptionTable:
    def test_one_row_per_option(self, result):
        text = render_option_table(result)
        # title + header + rule + 8 option rows.
        assert len(text.splitlines()) == 11

    def test_contains_key_columns(self, result):
        text = render_option_table(result)
        for column in ("U_s %", "C_HA/mo", "penalty/mo", "TCO/mo", "SLA"):
            assert column in text

    def test_meets_and_slips_marked(self, result):
        text = render_option_table(result)
        assert "meets" in text and "slips" in text

    def test_custom_title(self, result):
        assert render_option_table(result, title="XYZ").startswith("XYZ")

    def test_pruned_result_notes_skips(self, paper_problem):
        text = render_option_table(pruned_optimize(paper_problem))
        assert "pruned without evaluation" in text

    def test_unpruned_result_has_no_skip_note(self, result):
        assert "pruned without evaluation" not in render_option_table(result)


class TestSummary:
    def test_reproduces_figure10_fields(self, result):
        text = render_summary(result, result.option(8))
        assert "as-is strategy" in text
        assert "recommended (min TCO)" in text
        assert "min-penalty option" in text
        assert "savings vs as-is" in text

    def test_savings_value_present(self, result):
        text = render_summary(result, result.option(8))
        assert "62.0%" in text

    def test_custom_title(self, result):
        text = render_summary(result, result.option(8), title="Fig. 10")
        assert text.startswith("Fig. 10")
