"""The asyncio wire transport: envelopes over a real socket.

A live server (module-scoped, ephemeral port) backs most tests; the
bit-identical end-to-end check builds its own twin brokers so the
server's answer can be compared against a direct in-process session
with identical telemetry and a cold cache.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading

import pytest

from repro.broker.envelope import (
    ErrorEnvelope,
    RecommendEnvelope,
    ReportEnvelope,
)
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.errors import (
    InsufficientTelemetryError,
    UnknownNameError,
    ValidationError,
)
from repro.server import ServerClient, ServerError, start_in_thread
from repro.server.ingest import ExposureRecord
from repro.server.transport import error_envelope_for
from repro.sla.contract import Contract
from repro.units import MINUTES_PER_YEAR

OBSERVE_YEARS = 1.0
SEED = 23

# The CI gateway leg runs this file with REPRO_WORKERS=2, which makes
# start_in_thread spawn a GatewayServer; tests that reach into the
# in-process server's internals only make sense at workers=0.
GATEWAY_WORKERS = int(os.environ.get("REPRO_WORKERS", "0") or "0")
inprocess_only = pytest.mark.skipif(
    GATEWAY_WORKERS > 0,
    reason="asserts in-process server internals",
)


def observed_broker() -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=OBSERVE_YEARS, seed=SEED)
    return broker


def request(sla: float = 98.0, penalty: float = 100.0, **kwargs):
    return three_tier_request(Contract.linear(sla, penalty), **kwargs)


@pytest.fixture(scope="module")
def handle():
    with start_in_thread(observed_broker(), shards=4) as server_handle:
        yield server_handle


@pytest.fixture(scope="module")
def client(handle):
    return ServerClient(handle.host, handle.port)


class TestEndToEnd:
    def test_wire_report_bit_identical_to_direct_session(self):
        """Acceptance: socket round-trip == direct BrokerSession call."""
        envelope = RecommendEnvelope(request(), request_id="e2e-1")
        with observed_broker().session() as session:
            expected = session.recommend_envelope(envelope).to_json()
        with start_in_thread(observed_broker()) as twin:
            wire = ServerClient(twin.host, twin.port).recommend(envelope)
        assert wire.to_json() == expected

    def test_recommend_round_trip(self, client):
        report = client.recommend(RecommendEnvelope(request(), request_id="r-1"))
        assert report.request_id == "r-1"
        assert report.best.provider_name in ("metalcloud", "cumulus", "stratus")
        assert report.best.best.meets_sla

    def test_repeated_requests_hit_the_engine_cache(self, client):
        client.recommend(request())
        before = client.metrics()[("repro_engine_cache_hits_total", ())]
        client.recommend(request())
        after = client.metrics()[("repro_engine_cache_hits_total", ())]
        assert after >= before + 3  # one hit per provider

    def test_health_lists_providers(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert "metalcloud" in payload["providers"]

    def test_query_strings_are_accepted_on_every_route(self, client):
        status, _ = client.request_raw("GET", "/metrics?debug=1")
        assert status == 200
        status, _ = client.request_raw("GET", "/healthz?probe=live")
        assert status == 200

    def test_client_reuses_keepalive_connections(self, client):
        client.health()
        first = getattr(client._local, "connection", None)
        client.health()
        assert first is not None
        assert getattr(client._local, "connection", None) is first


class TestErrorPaths:
    """Malformed input must yield structured error envelopes, never
    a traceback or a dropped connection."""

    def test_malformed_json_is_structured_400(self, client):
        status, body = client.request_raw("POST", "/v2/recommend", "{nope")
        assert status == 400
        envelope = ErrorEnvelope.from_json(body)
        assert envelope.error == "validation-error"
        assert "JSON" in envelope.message

    def test_unsupported_schema_version_is_structured_400(self, client):
        payload = RecommendEnvelope(request()).to_dict()
        payload["schema_version"] = 99
        status, body = client.request_raw(
            "POST", "/v2/recommend", json.dumps(payload)
        )
        assert status == 400
        envelope = ErrorEnvelope.from_json(body)
        assert "schema_version" in envelope.message

    def test_unknown_provider_is_structured_404(self, client):
        bad = RecommendEnvelope(
            request(providers=("nimbus-9",)), request_id="bad-provider"
        )
        status, body = client.request_raw("POST", "/v2/recommend", bad.to_json())
        assert status == 404
        envelope = ErrorEnvelope.from_json(body)
        assert envelope.error == "unknown-name"
        assert "nimbus-9" in envelope.message
        assert envelope.request_id == "bad-provider"

    def test_unknown_job_id_is_structured_404(self, client):
        status, body = client.request_raw("GET", "/v2/jobs/job-999999")
        assert status == 404
        assert ErrorEnvelope.from_json(body).error == "unknown-name"

    def test_unknown_route_is_structured_404(self, client):
        status, body = client.request_raw("GET", "/v1/recommend")
        assert status == 404
        assert ErrorEnvelope.from_json(body).error == "unknown-route"

    def test_wrong_method_is_structured_405(self, client):
        status, body = client.request_raw("GET", "/v2/recommend")
        assert status == 405
        assert ErrorEnvelope.from_json(body).error == "method-not-allowed"

    def test_oversized_body_is_structured_413(self):
        with start_in_thread(
            observed_broker(), max_body_bytes=1024
        ) as small:
            status, body = ServerClient(small.host, small.port).request_raw(
                "POST", "/v2/recommend", "x" * 4096
            )
        assert status == 413
        assert ErrorEnvelope.from_json(body).error == "request-too-large"

    def test_connection_survives_an_error_response(self, client):
        # Same TCP-level behaviour ServerClient relies on: an error
        # must not poison the next request on a fresh connection.
        status, _ = client.request_raw("POST", "/v2/recommend", "{nope")
        assert status == 400
        report = client.recommend(request())
        assert report.best.best.meets_sla

    def test_error_responses_never_carry_tracebacks(self, client):
        for method, path, body in [
            ("POST", "/v2/recommend", "{nope"),
            ("POST", "/v2/batch", "{nope"),
            ("POST", "/v2/jobs", "null"),
            ("GET", "/v2/jobs/job-999999/result", None),
            ("POST", "/v2/ingest", '{"kind": "exposure"}'),
        ]:
            status, text = client.request_raw(method, path, body)
            assert status >= 400, (method, path)
            assert "Traceback" not in text, (method, path)
            assert ErrorEnvelope.from_json(text).status == status

    def test_negative_content_length_is_structured_400(self, handle):
        with socket.create_connection(
            (handle.host, handle.port), timeout=10.0
        ) as raw:
            raw.sendall(
                b"POST /v2/recommend HTTP/1.1\r\nContent-Length: -1\r\n\r\n"
            )
            data = raw.recv(65536)
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b"Content-Length" in data

    def test_garbage_head_answered_then_closed(self, handle):
        with socket.create_connection(
            (handle.host, handle.port), timeout=10.0
        ) as raw:
            raw.sendall(b"NOT-HTTP\r\n\r\n")
            data = raw.recv(65536)
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b'"kind": "error"' in data or b'"kind":"error"' in data


class TestJobs:
    def test_submit_poll_result_lifecycle(self, client):
        job_id = client.submit(RecommendEnvelope(request(), request_id="j-1"))
        assert job_id.startswith("job-")
        assert client.poll(job_id) in ("pending", "running", "done")
        report = client.result(job_id)
        assert report.request_id == "j-1"
        assert client.poll(job_id) == "done"

    @inprocess_only
    def test_failed_job_result_is_error_envelope(self, client, handle):
        job_id = client.submit(request(providers=("nimbus-9",)))
        with pytest.raises(ServerError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 404
        assert excinfo.value.envelope.error == "unknown-name"
        # Serving the failure counts as retrieval, so failed jobs
        # participate in retention eviction instead of leaking.
        assert handle.server.session.job(job_id).retrieved

    def test_unknown_job_subpaths_are_404_not_405(self, client):
        status, body = client.request_raw("GET", "/v2/jobs/a/b")
        assert status == 404
        assert ErrorEnvelope.from_json(body).error == "unknown-route"
        status, body = client.request_raw("POST", "/v2/jobs/a")
        assert status == 405
        assert ErrorEnvelope.from_json(body).error == "method-not-allowed"


class TestBatch:
    def test_batch_streams_reports_in_order(self, client):
        requests = [request(98.0), request(99.0), request(98.0, 250.0)]
        results = client.batch(requests)
        assert [type(r) for r in results] == [ReportEnvelope] * 3
        sequential = [client.recommend(r) for r in requests]

        def essence(report: ReportEnvelope) -> list[dict]:
            # engine_stats legitimately vary with cache warmth; the
            # recommendation payload must not.
            payload = []
            for provider in report.providers:
                entry = provider.to_dict()
                entry.pop("engine_stats")
                payload.append(entry)
            return payload

        assert [essence(r) for r in results] == [
            essence(r) for r in sequential
        ]

    def test_batch_mixes_errors_per_line(self, client):
        results = client.batch(
            [request(), request(providers=("nimbus-9",)), request()]
        )
        assert isinstance(results[0], ReportEnvelope)
        assert isinstance(results[1], ErrorEnvelope)
        assert results[1].error == "unknown-name"
        assert isinstance(results[2], ReportEnvelope)

    def test_abandoned_batch_stream_marks_jobs_retrieved(self):
        """A disconnecting batch client must not exempt its jobs from
        retention — nothing else holds their ids."""
        import asyncio

        from repro.server.transport import BrokerServer, _Request

        server = BrokerServer(observed_broker(), merge_interval=None)

        async def scenario() -> None:
            body = "\n".join(
                RecommendEnvelope(request(), request_id=f"b-{i}").to_json()
                for i in range(3)
            ).encode("utf-8")
            # start() never ran; only the dispatch machinery is needed.
            server._inflight = asyncio.Semaphore(4)
            _route, response = await server._dispatch(
                _Request("POST", "/v2/batch", {}, body)
            )
            stream = response.stream
            await stream.__anext__()  # client reads one line...
            await stream.aclose()  # ...then disconnects
            for job in server.session.jobs():
                assert job.retrieved, job.job_id
            await server.stop()

        asyncio.run(scenario())

    def test_batch_with_malformed_line_rejected_up_front(self, client):
        good = RecommendEnvelope(request()).to_json()
        status, body = client.request_raw(
            "POST", "/v2/batch", good + "\n{nope\n"
        )
        assert status == 400
        assert "line 2" in ErrorEnvelope.from_json(body).message

    def test_empty_batch_rejected(self, client):
        status, _ = client.request_raw("POST", "/v2/batch", "  \n ")
        assert status == 400


class TestIngest:
    @inprocess_only
    def test_wire_ingest_updates_estimates_after_flush(self):
        broker = BrokerService(all_providers())
        with start_in_thread(broker, shards=4, merge_interval=None) as fresh:
            wire = ServerClient(fresh.host, fresh.port)
            records = [
                ExposureRecord("metalcloud", "vm", 10, 5 * MINUTES_PER_YEAR)
            ]
            ack = wire.ingest(records)
            assert ack["routed"] == 1
            assert ack["shards"] == 4
            flush = wire.flush()
            assert flush["merged"] == 1
            assert broker.telemetry.exposure_years("metalcloud", "vm") == (
                pytest.approx(50.0)
            )

    def test_empty_ingest_rejected(self, client):
        status, _ = client.request_raw("POST", "/v2/ingest", "\n\n")
        assert status == 400


class TestErrorEnvelopeMapping:
    def test_exception_to_envelope_mapping(self):
        cases = [
            (UnknownNameError("unknown job 'x'"), 404, "unknown-name"),
            (InsufficientTelemetryError("no data"), 422, "insufficient-telemetry"),
            (ValidationError("bad"), 400, "validation-error"),
            (RuntimeError("boom"), 500, "internal-error"),
        ]
        for exc, status, slug in cases:
            envelope = error_envelope_for(exc, request_id="rid")
            assert envelope.status == status
            assert envelope.error == slug
            assert envelope.request_id == "rid"

    def test_internal_errors_hide_details(self):
        envelope = error_envelope_for(RuntimeError("secret state"))
        assert "secret state" not in envelope.message

    def test_error_envelope_round_trip(self):
        envelope = ErrorEnvelope(404, "unknown-name", "unknown job", "rid-1")
        assert ErrorEnvelope.from_json(envelope.to_json()) == envelope

    def test_error_envelope_validates_status(self):
        with pytest.raises(ValidationError, match="400..599"):
            ErrorEnvelope(200, "nope", "not an error")


class TestMetricsEndpoint:
    def test_prometheus_exposition_parses_and_covers_subsystems(self, client):
        client.recommend(request())  # ensure at least one request counted
        samples = client.metrics()
        assert ("repro_engine_cache_hits_total", ()) in samples
        assert ("repro_engine_cache_misses_total", ()) in samples
        assert ("repro_engine_cache_evictions_total", ()) in samples
        for shard in range(4):
            key = ("repro_ingest_events_total", (("shard", str(shard)),))
            assert key in samples
        assert ("repro_jobs", (("status", "done"),)) in samples
        assert ("repro_job_queue_depth", ()) in samples
        recommend_count = samples[
            ("repro_http_requests_total", (("route", "recommend"), ("status", "200")))
        ]
        assert recommend_count >= 1
        bucket_inf = samples[
            (
                "repro_http_request_seconds_bucket",
                (("le", "+Inf"), ("route", "recommend")),
            )
        ]
        count = samples[
            ("repro_http_request_seconds_count", (("route", "recommend"),))
        ]
        assert bucket_inf == count >= 1

    def test_help_and_type_lines_present(self, client):
        text = client.metrics_text()
        assert "# HELP repro_engine_cache_hits_total" in text
        assert "# TYPE repro_http_request_seconds histogram" in text


class TestGracefulShutdown:
    def test_stop_with_idle_keepalive_connection_does_not_hang(self):
        import time

        handle = start_in_thread(observed_broker())
        wire = ServerClient(handle.host, handle.port)
        assert wire.health()["status"] == "ok"
        with socket.create_connection((handle.host, handle.port)):
            started = time.monotonic()
            handle.close()
            elapsed = time.monotonic() - started
        assert elapsed < handle.server.grace + 20.0

    def test_double_close_is_idempotent(self):
        handle = start_in_thread(observed_broker())
        handle.close()
        handle.close()


class _ProcessThenDropServer:
    """A raw-socket server that processes every request but answers only
    the first per connection — the second is read fully (and counted as
    processed) before the connection is dropped without a response.

    This is exactly the dangerous stale-keep-alive shape: the server has
    already acted on the request when the client's ``getresponse()``
    fails, so an automatic client retry would run the request twice.
    """

    def __init__(self) -> None:
        self.processed: list[str] = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.2)
        self.host, self.port = self._sock.getsockname()
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def __enter__(self) -> "_ProcessThenDropServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self._closing = True
        self._thread.join(timeout=5.0)
        self._sock.close()

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        served = 0
        with conn:
            while True:
                request = self._read_request(conn)
                if request is None:
                    return
                self.processed.append(request)
                served += 1
                if served >= 2:
                    return  # process, then drop: no response bytes
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 2\r\n\r\n{}"
                )

    def _read_request(self, conn: socket.socket) -> str | None:
        buffer = b""
        while b"\r\n\r\n" not in buffer:
            try:
                data = conn.recv(65536)
            except OSError:
                return None
            if not data:
                return None
            buffer += data
        head, _, body = buffer.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        method, path = lines[0].split()[:2]
        length = 0
        for line in lines[1:]:
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(body) < length:
            data = conn.recv(65536)
            if not data:
                return None
            body += data
        return f"{method.decode()} {path.decode()}"


class TestClientRetrySemantics:
    """The stale keep-alive retry must never replay non-idempotent work."""

    def test_post_is_not_retried_after_response_phase_failure(self):
        with _ProcessThenDropServer() as server:
            wire = ServerClient(server.host, server.port, timeout=5.0)
            status, _ = wire.request_raw("POST", "/v2/jobs", '{"n": 1}')
            assert status == 200
            # Second POST reuses the keep-alive connection; the server
            # processes it and drops the link.  The client must surface
            # the failure instead of silently submitting a duplicate.
            with pytest.raises((ConnectionError, http.client.HTTPException)):
                wire.request_raw("POST", "/v2/jobs", '{"n": 2}')
            assert server.processed == ["POST /v2/jobs", "POST /v2/jobs"]

    def test_get_is_retried_on_a_fresh_connection(self):
        with _ProcessThenDropServer() as server:
            wire = ServerClient(server.host, server.port, timeout=5.0)
            status, _ = wire.request_raw("GET", "/healthz")
            assert status == 200
            # Same drop, but GET is idempotent: one transparent replay
            # on a fresh connection (the server answers request #1 of
            # every connection), so the caller sees a clean 200.
            status, _ = wire.request_raw("GET", "/healthz")
            assert status == 200
            assert server.processed == [
                "GET /healthz",
                "GET /healthz",  # processed, response lost
                "GET /healthz",  # transparent replay
            ]
