"""The metrics registry: render/parse round trips and histogram math."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.server.metrics import MetricsRegistry, parse_prometheus_text


class TestRegistryRoundTrip:
    def test_counter_and_gauge_samples_round_trip(self):
        registry = MetricsRegistry()
        requests = registry.counter("rt_requests_total", "Requests.", ("route",))
        requests.inc(labels=("recommend",))
        requests.inc(2.0, labels=("batch",))
        depth = registry.gauge("rt_depth", "Queue depth.")
        depth.set(7)
        samples = parse_prometheus_text(registry.render())
        assert samples[("rt_requests_total", (("route", "recommend"),))] == 1
        assert samples[("rt_requests_total", (("route", "batch"),))] == 2
        assert samples[("rt_depth", ())] == 7

    def test_awkward_label_values_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_paths_total", "Paths.", ("path",))
        for value in ('C:\\new', 'say "hi"', "line\nbreak", "\\\\n"):
            counter.inc(labels=(value,))
        samples = parse_prometheus_text(registry.render())
        for value in ('C:\\new', 'say "hi"', "line\nbreak", "\\\\n"):
            assert samples[("rt_paths_total", (("path", value),))] == 1

    def test_histogram_buckets_are_cumulative_and_le_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "rt_seconds", "Latency.", buckets=(0.1, 0.5, 1.0)
        )
        for value in (0.05, 0.1, 0.3, 2.0):
            histogram.observe(value)
        samples = parse_prometheus_text(registry.render())
        assert samples[("rt_seconds_bucket", (("le", "0.1"),))] == 2  # inclusive
        assert samples[("rt_seconds_bucket", (("le", "0.5"),))] == 3
        assert samples[("rt_seconds_bucket", (("le", "1"),))] == 3
        assert samples[("rt_seconds_bucket", (("le", "+Inf"),))] == 4
        assert samples[("rt_seconds_count", ())] == 4
        assert samples[("rt_seconds_sum", ())] == pytest.approx(2.45)

    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("rt_once", "Once.")
        with pytest.raises(ValidationError, match="already registered"):
            registry.gauge("rt_once", "Twice.")

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_up", "Up.")
        with pytest.raises(ValidationError, match="only go up"):
            counter.inc(-1.0)
