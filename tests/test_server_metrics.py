"""The metrics registry: render/parse round trips and histogram math."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.optimizer.megabatch import MegabatchStacker
from repro.optimizer.pools import PoolRegistry
from repro.server.metrics import (
    MetricsRegistry,
    ServerMetrics,
    parse_prometheus_text,
)


class FakeSession:
    """Duck-typed stand-in for a BrokerSession's metrics surface."""

    def __init__(self, megabatch=None):
        self.megabatch = megabatch

    def metrics(self):
        return {
            "engine_cache": {"hits": 3, "misses": 1, "evictions": 0},
            "engines_cached": 1,
            "jobs": {"pending": 0, "running": 0, "done": 2, "failed": 0},
            "job_queue_depth": 0,
            "jobs_evicted": {"retrieved": 0, "ttl": 0},
            "megabatch": None,
        }


class TestRegistryRoundTrip:
    def test_counter_and_gauge_samples_round_trip(self):
        registry = MetricsRegistry()
        requests = registry.counter("rt_requests_total", "Requests.", ("route",))
        requests.inc(labels=("recommend",))
        requests.inc(2.0, labels=("batch",))
        depth = registry.gauge("rt_depth", "Queue depth.")
        depth.set(7)
        samples = parse_prometheus_text(registry.render())
        assert samples[("rt_requests_total", (("route", "recommend"),))] == 1
        assert samples[("rt_requests_total", (("route", "batch"),))] == 2
        assert samples[("rt_depth", ())] == 7

    def test_awkward_label_values_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_paths_total", "Paths.", ("path",))
        for value in ('C:\\new', 'say "hi"', "line\nbreak", "\\\\n"):
            counter.inc(labels=(value,))
        samples = parse_prometheus_text(registry.render())
        for value in ('C:\\new', 'say "hi"', "line\nbreak", "\\\\n"):
            assert samples[("rt_paths_total", (("path", value),))] == 1

    def test_histogram_buckets_are_cumulative_and_le_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "rt_seconds", "Latency.", buckets=(0.1, 0.5, 1.0)
        )
        for value in (0.05, 0.1, 0.3, 2.0):
            histogram.observe(value)
        samples = parse_prometheus_text(registry.render())
        assert samples[("rt_seconds_bucket", (("le", "0.1"),))] == 2  # inclusive
        assert samples[("rt_seconds_bucket", (("le", "0.5"),))] == 3
        assert samples[("rt_seconds_bucket", (("le", "1"),))] == 3
        assert samples[("rt_seconds_bucket", (("le", "+Inf"),))] == 4
        assert samples[("rt_seconds_count", ())] == 4
        assert samples[("rt_seconds_sum", ())] == pytest.approx(2.45)

    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("rt_once", "Once.")
        with pytest.raises(ValidationError, match="already registered"):
            registry.gauge("rt_once", "Twice.")

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_up", "Up.")
        with pytest.raises(ValidationError, match="only go up"):
            counter.inc(-1.0)


class TestExpositionConformance:
    """Regressions for Prometheus text-format edge cases."""

    def test_negative_infinity_and_nan_render_and_parse(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rt_edge", "Edge values.", ("kind",))
        gauge.set(float("-inf"), labels=("lo",))
        gauge.set(float("inf"), labels=("hi",))
        gauge.set(float("nan"), labels=("nan",))
        text = registry.render()
        assert 'rt_edge{kind="lo"} -Inf' in text
        assert 'rt_edge{kind="hi"} +Inf' in text
        assert 'rt_edge{kind="nan"} NaN' in text
        samples = parse_prometheus_text(text)
        assert samples[("rt_edge", (("kind", "lo"),))] == float("-inf")
        assert samples[("rt_edge", (("kind", "hi"),))] == float("inf")
        nan = samples[("rt_edge", (("kind", "nan"),))]
        assert nan != nan  # NaN round-trips as NaN

    def test_metric_name_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError, match="invalid metric name"):
            registry.counter("0bad", "Leading digit.")
        with pytest.raises(ValidationError, match="invalid metric name"):
            registry.counter("has-dash", "Dash.")
        registry.counter("ok:colon_name", "Colons are legal in metrics.")

    def test_label_name_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError, match="invalid label name"):
            registry.counter("rt_labels", "Bad label.", ("has-dash",))
        with pytest.raises(ValidationError, match="invalid label name"):
            registry.counter("rt_labels2", "Colon label.", ("no:colon",))

    def test_histogram_rejects_reserved_le_label(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError, match="reserved label 'le'"):
            registry.histogram("rt_hist", "Reserved.", ("le",))

    def test_histogram_bucket_counts_stay_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "rt_mono", "Monotone.", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for value in (0.0005, 0.005, 0.005, 0.05, 0.5, 5.0, 5.0):
            histogram.observe(value)
        samples = parse_prometheus_text(registry.render())
        counts = [
            samples[("rt_mono_bucket", (("le", le),))]
            for le in ("0.001", "0.01", "0.1", "1", "+Inf")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == samples[("rt_mono_count", ())] == 7


class TestServerMetricsSpanHistogram:
    def test_tracer_observer_feeds_phase_histogram(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        metrics = ServerMetrics(FakeSession(), tracer=tracer)
        assert tracer.observer == metrics._observe_span

        with tracer.span("request"):
            with tracer.span("evaluate"):
                pass
        samples = parse_prometheus_text(metrics.render())
        assert samples[
            ("repro_span_duration_seconds_count", (("phase", "request"),))
        ] == 1
        assert samples[
            ("repro_span_duration_seconds_count", (("phase", "evaluate"),))
        ] == 1
        # Cumulative histogram invariants hold per phase label.
        assert samples[
            ("repro_span_duration_seconds_bucket",
             (("le", "+Inf"), ("phase", "request")))
        ] == 1

    def test_without_tracer_histogram_stays_declared_but_empty(self):
        metrics = ServerMetrics(FakeSession())
        text = metrics.render()
        assert "# TYPE repro_span_duration_seconds histogram" in text
        samples = parse_prometheus_text(text)
        assert not any(
            name.startswith("repro_span_duration_seconds") for name, _ in samples
        )


class TestServerMetricsPoolSamples:
    def test_pool_leases_track_registry(self):
        registry = PoolRegistry()
        metrics = ServerMetrics(FakeSession(), pool_registry=registry)
        samples = parse_prometheus_text(metrics.render())
        assert samples[("repro_pool_leases", ())] == 0

        handle = registry.acquire("thread", 2)
        try:
            samples = parse_prometheus_text(metrics.render())
            assert samples[("repro_pool_leases", ())] == 1
        finally:
            handle.release()
        samples = parse_prometheus_text(metrics.render())
        assert samples[("repro_pool_leases", ())] == 0

    def test_term_table_bytes_track_shm_segments(self):
        registry = PoolRegistry(table_backend="shm")
        metrics = ServerMetrics(FakeSession(), pool_registry=registry)
        if registry.table_channel_backend() != "shm":
            pytest.skip("shared_memory unavailable; channel degraded")

        handle = registry.acquire("process", 2)
        try:
            samples = parse_prometheus_text(metrics.render())
            assert samples[("repro_term_table_bytes", ())] == 0
            registry.publish(7001, {"payload": list(range(64))})
            samples = parse_prometheus_text(metrics.render())
            assert samples[("repro_term_table_bytes", ())] > 0
            registry.retract(7001)
            samples = parse_prometheus_text(metrics.render())
            assert samples[("repro_term_table_bytes", ())] == 0
        finally:
            handle.release()

    def test_manager_channel_reports_zero_bytes(self):
        registry = PoolRegistry(table_backend="manager")
        metrics = ServerMetrics(FakeSession(), pool_registry=registry)
        handle = registry.acquire("process", 2)
        try:
            registry.publish(7002, {"payload": [1.0, 2.0]})
            samples = parse_prometheus_text(metrics.render())
            assert samples[("repro_term_table_bytes", ())] == 0
            registry.retract(7002)
        finally:
            handle.release()


class TestServerMetricsMegabatchHistogram:
    def test_stacker_observer_feeds_histogram(self):
        stacker = MegabatchStacker()
        metrics = ServerMetrics(FakeSession(megabatch=stacker))
        assert stacker.observer == metrics._observe_megabatch

        stacker.evaluate(1, lambda rows: rows, [10, 11])
        stacker.evaluate(1, lambda rows: rows, [12])
        samples = parse_prometheus_text(metrics.render())
        assert samples[("repro_megabatch_size_count", ())] == 2
        assert samples[("repro_megabatch_size_sum", ())] == 2  # 1 span each
        assert samples[("repro_megabatch_size_bucket", (("le", "1"),))] == 2

    def test_without_megabatch_histogram_stays_empty(self):
        metrics = ServerMetrics(FakeSession(megabatch=None))
        samples = parse_prometheus_text(metrics.render())
        assert ("repro_megabatch_size_count", ()) not in samples
        # The family itself is still declared for scrapers.
        assert "# TYPE repro_megabatch_size histogram" in metrics.render()
