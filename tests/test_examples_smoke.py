"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a broken example is a broken
promise.  The slower broker examples run with reduced parameters via
environment-free execution, so this module just runs each script in a
subprocess and checks for a zero exit and non-trivial output.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

#: Expected fragments proving each example did its real work.
EXPECTED_OUTPUT = {
    "quickstart.py": "Deploy #3 HA: storage",
    "broker_session.py": "Wire round-trip:",
    "case_study_softlayer.py": "savings vs as-is",
    "hybrid_brokerage.py": "Placement:",
    "monte_carlo_validation.py": "worst |analytic - simulated| gap",
    "penalty_sensitivity.py": "Penalty *shape* also matters",
    "sla_compliance.py": "Jensen gap",
    "upgrade_advisor.py": "the paper's recommendation",
    "parallel_paths.py": "parallel gain",
    "broker_portfolio.py": "TOTAL:",
    "server_round_trip.py": "Server round-trip:",
}


def test_every_example_is_covered():
    """Adding an example without a smoke test should fail loudly."""
    assert set(ALL_EXAMPLES) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in completed.stdout
