"""Cross-backend equivalence: serial, thread, process and vector are one
engine.

The backend contract is byte-level: for any problem, every backend must
yield the *identical* ``EvaluatedOption`` stream in the identical order —
same ids, same choice names, bit-identical availability and TCO floats —
including replayed (cache-hit) streams and ``from_stream`` distillation.
These tests sweep the paper's named workload scenarios plus
hypothesis-randomized catalogs/contracts, and pin down the failure
modes: a worker that dies mid-chunk surfaces a structured engine error,
pool shutdown is clean and reversible, the process backend degrades to
serial (with a warning) where worker processes cannot start, and the
vector backend degrades the same way when numpy is not installed.

Pool *ownership* is tested here too: thread/process executors are leased
from a ref-counted :class:`~repro.optimizer.pools.PoolRegistry`, so N
engines share one pool whose workers hold term tables for all of them,
and the pool shuts down when the last holder closes.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EngineBackendError, OptimizerError
from repro.optimizer import engine as engine_module
from repro.optimizer import pools as pools_module
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.engine import (
    BACKEND_ENV_VAR,
    ENGINE_BACKENDS,
    TERM_TABLE_BACKENDS,
    EvaluationEngine,
    ProcessBackend,
    VectorBackend,
    resolve_backend,
)
from repro.optimizer.pools import PoolRegistry
from repro.optimizer.result import OptimizationResult
from repro.sla.contract import Contract
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    ServiceCreditPenalty,
    TieredPenalty,
)
from repro.workloads.case_study import case_study_problem
from repro.workloads.generators import random_problem
from repro.workloads.scenarios import SCENARIOS

#: The backends every equivalence assertion sweeps.
ALL_BACKENDS = ENGINE_BACKENDS

HAS_NUMPY = engine_module._import_numpy() is not None

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy not installed (the [vector] extra)"
)

#: Non-serial backends whose streams must match serial byte-for-byte.
#: Without numpy the vector backend degrades (warning) — the degrade
#: path has its own tests, so equivalence sweeps skip it there.
NON_SERIAL = tuple(
    backend
    for backend in ENGINE_BACKENDS
    if backend != "serial" and (backend != "vector" or HAS_NUMPY)
)

#: Named workload scenarios for the acceptance criterion (>= 3).
WORKLOAD_PROBLEMS = [
    ("case-study", case_study_problem),
    *(
        (name, (lambda n: lambda: SCENARIOS[n].problem)(name))
        for name in sorted(SCENARIOS)
    ),
]


def stream_signature(options) -> bytes:
    """A byte string that is equal iff two option streams are identical.

    Each option is pickled independently (no cross-option memoization,
    so a replayed stream of shared cache-hit objects serializes the same
    as a stream of fresh ones); floats pickle to their exact bit
    patterns, making this a true bit-identity check.
    """
    return b"".join(
        pickle.dumps(
            (
                option.option_id,
                option.choice_names,
                option.availability,
                option.tco,
                option.meets_sla,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for option in options
    )


def backend_engine(problem, backend: str, **kwargs) -> EvaluationEngine:
    return EvaluationEngine(problem, backend=backend, **kwargs)


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("label, factory", WORKLOAD_PROBLEMS)
    def test_workload_scenarios_bit_identical(self, label, factory):
        problem = factory()
        reference = list(
            backend_engine(problem, "serial").evaluate_all()
        )
        expected = stream_signature(reference)
        for backend in NON_SERIAL:
            with backend_engine(problem, backend, chunk_size=16) as engine:
                assert stream_signature(engine.evaluate_all()) == expected, (
                    label,
                    backend,
                )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        clusters=st.integers(min_value=2, max_value=4),
        choices=st.integers(min_value=1, max_value=3),
    )
    def test_property_randomized_catalogs_and_contracts(
        self, seed, clusters, choices
    ):
        problem = random_problem(
            seed, clusters=clusters, choices_per_layer=choices
        )
        expected = stream_signature(
            backend_engine(problem, "serial").evaluate_all()
        )
        for backend in NON_SERIAL:
            with backend_engine(problem, backend, chunk_size=7) as engine:
                first = stream_signature(engine.evaluate_all())
                replay = stream_signature(engine.evaluate_all())
            assert first == expected, backend
            # The replay is served from the ChoiceNames result cache
            # (relabelled hits) and must still be byte-identical.
            assert replay == expected, backend
            assert engine.stats.cache_hits >= engine.space.size

    def test_cache_hit_replay_is_pure_hits_on_process_backend(self):
        problem = random_problem(17, clusters=4, choices_per_layer=2)
        with backend_engine(problem, "process", chunk_size=8) as engine:
            list(engine.evaluate_all())
            combines = engine.stats.incremental_combines
            list(engine.evaluate_all())
            assert engine.stats.incremental_combines == combines
            assert engine.stats.cache_hits == engine.space.size

    @pytest.mark.parametrize(
        "backend",
        ["thread", "process", pytest.param("vector", marks=requires_numpy)],
    )
    def test_from_stream_distillation_matches_serial(self, backend):
        problem = random_problem(5, clusters=4, choices_per_layer=3)
        full = brute_force_optimize(problem)
        with backend_engine(
            problem, backend, cache=False, chunk_size=32
        ) as engine:
            distilled = OptimizationResult.from_stream(
                engine.evaluate_all(),
                space_size=engine.space.size,
                strategy="brute-force",
                keep_options=False,
            )
        assert distilled.evaluations == full.evaluations
        assert distilled.best.option_id == full.best.option_id
        assert distilled.best.tco.total == full.best.tco.total
        assert (
            distilled.min_penalty_option.option_id
            == full.min_penalty_option.option_id
        )

    def test_options_stay_lazy_across_backends(self):
        problem = case_study_problem()
        for backend in ALL_BACKENDS:
            with backend_engine(problem, backend) as engine:
                options = list(engine.evaluate_all())
            assert all(
                not option.system_is_materialized for option in options
            ), backend
            # Forcing one topology still works (and matches direct).
            assert options[0].system.cluster_names == (
                problem.bare_system.cluster_names
            )

    @pytest.mark.parametrize(
        "clause",
        [
            NoPenalty(),
            TieredPenalty(((2.0, 100.0), (8.0, 250.0), (float("inf"), 500.0))),
            TieredPenalty(((2.0, 100.0),)),  # closed tail extends last rate
            CappedPenalty(LinearPenalty(100.0), monthly_cap=400.0),
            ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25))),
        ],
        ids=["none", "tiered-open", "tiered-closed", "capped", "credits"],
    )
    def test_non_linear_clauses_bit_identical(self, clause):
        # The workload generators only emit linear contracts, so the
        # vectorized clause kernels (tiered masks, caps, credit steps)
        # need their own end-to-end sweep through every backend.
        base = random_problem(31, clusters=3, choices_per_layer=3)
        problem = dataclasses.replace(
            base,
            contract=Contract(sla=base.contract.sla, penalty=clause),
        )
        expected = stream_signature(
            backend_engine(problem, "serial").evaluate_all()
        )
        for backend in NON_SERIAL:
            with backend_engine(problem, backend, chunk_size=16) as engine:
                assert stream_signature(engine.evaluate_all()) == expected, (
                    backend
                )


class TestBackendRebinding:
    def test_set_backend_keeps_term_and_result_caches(self):
        problem = random_problem(11, clusters=3, choices_per_layer=2)
        engine = EvaluationEngine(problem)
        expected = stream_signature(engine.evaluate_all())
        terms = engine.stats.cluster_term_computations
        combines = engine.stats.incremental_combines
        for backend in NON_SERIAL + ("serial",):
            engine.set_backend(backend, chunk_size=4)
            assert engine.backend == backend
            assert engine.parallel == (backend != "serial")
            assert stream_signature(engine.evaluate_all()) == expected
            # Rebinding never invalidates the caches: no new cluster
            # terms, no new combines — replays are pure hits.
            assert engine.stats.cluster_term_computations == terms
            assert engine.stats.incremental_combines == combines
        engine.close()

    def test_parallel_flag_is_thread_alias(self, monkeypatch):
        # The env default (the CI smoke hook) outranks the legacy flag;
        # clear it so the alias itself is what resolves.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        engine = EvaluationEngine(case_study_problem(), parallel=True)
        assert engine.backend == "thread"
        assert engine.parallel is True
        engine.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(OptimizerError, match="backend"):
            EvaluationEngine(case_study_problem(), backend="quantum")
        engine = EvaluationEngine(case_study_problem())
        with pytest.raises(OptimizerError, match="backend"):
            engine.set_backend("quantum")

    @pytest.mark.parametrize("backend", TERM_TABLE_BACKENDS)
    def test_term_table_backends_require_incremental_mode(self, backend):
        with pytest.raises(OptimizerError, match="incremental"):
            EvaluationEngine(
                case_study_problem(), mode="direct", backend=backend
            )
        engine = EvaluationEngine(case_study_problem(), mode="direct")
        with pytest.raises(OptimizerError, match="direct"):
            engine.set_backend(backend)

    def test_set_backend_rejects_bad_chunk_size(self):
        engine = EvaluationEngine(case_study_problem())
        with pytest.raises(OptimizerError, match="chunk_size"):
            engine.set_backend("thread", chunk_size=0)

    def test_set_backend_resize_recreates_pool(self):
        problem = case_study_problem()
        with backend_engine(problem, "process", max_workers=1) as engine:
            list(engine.evaluate_all())
            old_pool = engine._backend_impl._pool
            assert old_pool is not None
            engine.set_backend("process", max_workers=2)
            # The live pool is dropped so the next stream honours the
            # new width; caches survive untouched.
            assert engine._backend_impl._pool is None
            assert engine.max_workers == 2
            list(engine.evaluate_all())
            assert engine.stats.cache_hits >= engine.space.size


class TestEnvironmentDefault:
    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        engine = EvaluationEngine(case_study_problem())
        assert engine.backend == "process"
        engine.close()

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        engine = EvaluationEngine(case_study_problem(), backend="serial")
        assert engine.backend == "serial"

    @pytest.mark.parametrize("backend", TERM_TABLE_BACKENDS)
    def test_env_term_table_backends_never_forced_onto_direct_mode(
        self, monkeypatch, backend
    ):
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        engine = EvaluationEngine(case_study_problem(), mode="direct")
        assert engine.backend == "serial"

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(OptimizerError, match="REPRO_BACKEND"):
            resolve_backend(None)

    def test_empty_env_var_means_unset(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None) == "serial"
        assert resolve_backend(None, parallel=True) == "thread"


class TestFailureModes:
    @pytest.mark.parametrize(
        "backend",
        ["thread", "process", pytest.param("vector", marks=requires_numpy)],
    )
    def test_worker_failure_surfaces_structured_error(self, backend):
        # cache=False skips the parent-side ChoiceNames probe, so the
        # out-of-range index reaches the worker and blows up mid-chunk.
        problem = case_study_problem()
        with backend_engine(problem, backend, cache=False) as engine:
            with pytest.raises(OptimizerError):
                list(engine.evaluate_many([(1, (99, 99, 99))]))
            # The pool is not wedged: the next stream works.
            options = list(engine.evaluate_all())
            assert len(options) == engine.space.size

    def test_process_worker_crash_wraps_into_backend_error(self):
        # An unpicklable-result / dead-worker class of failure: kill the
        # chunk function itself so the future carries a non-library
        # error, which must come back as EngineBackendError.
        problem = case_study_problem()
        engine = backend_engine(problem, "process", cache=False)
        try:
            original = engine_module._process_worker_chunk
            engine_module._process_worker_chunk = None  # unpicklable call
            with pytest.raises((EngineBackendError, OptimizerError)):
                list(engine.evaluate_all())
        finally:
            engine_module._process_worker_chunk = original
            engine.close()

    def test_engine_close_is_clean_and_idempotent(self):
        problem = case_study_problem()
        engine = backend_engine(problem, "process", chunk_size=2)
        list(engine.evaluate_all())
        backend = engine._backend_impl
        assert backend._pool is not None
        engine.close()
        assert backend._pool is None
        engine.close()  # idempotent
        # A closed engine lazily recreates its pool on next use.
        assert len(list(engine.evaluate_all())) == engine.space.size
        engine.close()
        assert backend._pool is None

    def test_session_close_shuts_down_cached_engine_pools(self):
        from repro.broker.service import BrokerService
        from repro.cloud.providers import metalcloud
        from repro.broker.request import three_tier_request
        from repro.sla.contract import Contract

        broker = BrokerService([metalcloud()])
        broker.observe_all(years=3.0, seed=5)
        session = broker.session(backend="process")
        request = three_tier_request(
            Contract.linear(98.0, 100.0), strategy="brute-force"
        )
        session.recommend(request)
        engines = session.engine_cache.engines()
        assert engines and all(
            engine.backend == "process" for engine in engines
        )
        session.close()
        assert all(
            engine._backend_impl._pool is None for engine in engines
        )

    def test_process_backend_degrades_to_serial_with_warning(self, monkeypatch):
        problem = case_study_problem()
        reference = stream_signature(
            EvaluationEngine(problem).evaluate_all()
        )

        def unavailable(*args, **kwargs):
            raise NotImplementedError("no process support on this platform")

        monkeypatch.setattr(
            pools_module.PoolRegistry, "acquire", unavailable
        )
        engine = backend_engine(problem, "process")
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            options = list(engine.evaluate_all())
        assert stream_signature(options) == reference
        # Degradation is sticky (no warning spam, no retry storm).
        assert stream_signature(engine.evaluate_all()) == reference
        assert engine._backend_impl._degraded is True

    def test_degraded_backend_still_counts_stats(self, monkeypatch):
        problem = case_study_problem()

        def unavailable(*args, **kwargs):
            raise OSError("fork failed")

        monkeypatch.setattr(pools_module.PoolRegistry, "acquire", unavailable)
        engine = backend_engine(problem, "process")
        with pytest.warns(RuntimeWarning):
            list(engine.evaluate_all())
        assert engine.stats.incremental_combines == engine.space.size
        assert engine.stats.topology_evaluations == 0


class TestStrategiesAcrossBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_shared_engine_serves_all_strategies(self, backend):
        from repro.optimizer.branch_bound import branch_and_bound_optimize
        from repro.optimizer.pruned import pruned_optimize

        problem = random_problem(3, clusters=4, choices_per_layer=2)
        reference = brute_force_optimize(problem)
        with backend_engine(problem, backend, chunk_size=8) as engine:
            brute = brute_force_optimize(problem, engine=engine)
            pruned = pruned_optimize(problem, engine=engine)
            bnb = branch_and_bound_optimize(problem, engine=engine)
        assert brute.best.tco.total == reference.best.tco.total
        assert pruned.best.tco.total == reference.best.tco.total
        assert bnb.best.tco.total == reference.best.tco.total
        assert engine.stats.topology_evaluations == 0


class TestDistilledSweep:
    """EvaluationEngine.sweep: block-distilled ranking == scalar fold."""

    CLAUSES = [
        NoPenalty(),
        LinearPenalty(950.0),
        TieredPenalty(((4.0, 500.0), (12.0, 900.0), (float("inf"), 1500.0))),
        CappedPenalty(LinearPenalty(1200.0), monthly_cap=20000.0),
        ServiceCreditPenalty(
            250000.0, ((2.0, 0.05), (8.0, 0.15), (24.0, 0.4))
        ),
    ]

    @staticmethod
    def _with_clause(problem, clause):
        return dataclasses.replace(
            problem,
            contract=Contract(sla=problem.contract.sla, penalty=clause),
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_sweep_matches_serial_distillation(self, backend):
        problem = random_problem(47, clusters=4, choices_per_layer=3)
        with backend_engine(problem, "serial", cache=False) as engine:
            reference = engine.sweep(keep_options=False)
        with backend_engine(
            problem, backend, cache=False, chunk_size=16
        ) as engine:
            result = engine.sweep(keep_options=False)
        assert result.evaluations == reference.evaluations
        assert result.space_size == reference.space_size
        assert stream_signature(result.options) == stream_signature(
            reference.options
        )

    @requires_numpy
    @pytest.mark.parametrize(
        "clause",
        CLAUSES,
        ids=["none", "linear", "tiered", "capped", "credits"],
    )
    def test_distill_bit_identical_across_penalty_shapes(self, clause):
        problem = self._with_clause(
            random_problem(48, clusters=3, choices_per_layer=3), clause
        )
        with backend_engine(problem, "serial", cache=False) as engine:
            reference = engine.sweep(keep_options=False)
        with backend_engine(
            problem, "vector", cache=False, chunk_size=8
        ) as engine:
            distilled = engine.sweep(keep_options=False)
        assert stream_signature(distilled.options) == stream_signature(
            reference.options
        )

    @requires_numpy
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_distill_matches_scalar_fold_on_random_catalogs(self, seed):
        problem = random_problem(seed, clusters=3, choices_per_layer=3)
        with backend_engine(problem, "serial", cache=False) as engine:
            reference = engine.sweep(keep_options=False)
        with backend_engine(
            problem, "vector", cache=False, chunk_size=16
        ) as engine:
            distilled = engine.sweep(keep_options=False)
        assert distilled.evaluations == reference.evaluations
        assert stream_signature(distilled.options) == stream_signature(
            reference.options
        )

    @requires_numpy
    def test_sweep_with_tables_matches_from_stream(self):
        problem = random_problem(49, clusters=3, choices_per_layer=3)
        reference = brute_force_optimize(problem)
        with backend_engine(problem, "vector", chunk_size=16) as engine:
            table = engine.sweep(keep_options=True)
        assert stream_signature(table.options) == stream_signature(
            reference.options
        )

    @requires_numpy
    def test_distill_with_cache_on_falls_back_and_admits(self):
        problem = random_problem(50, clusters=3, choices_per_layer=2)
        with backend_engine(
            problem, "vector", cache=True, chunk_size=16
        ) as engine:
            first = engine.sweep(keep_options=False)
            hits_before = engine.stats.cache_hits
            replay = engine.sweep(keep_options=False)
        assert stream_signature(first.options) == stream_signature(
            replay.options
        )
        # The fallback fold streams per candidate, so the replayed sweep
        # is answered from the result cache it populated.
        assert engine.stats.cache_hits - hits_before == engine.space.size

    @requires_numpy
    def test_distill_counts_full_space_in_stats(self):
        problem = random_problem(51, clusters=3, choices_per_layer=3)
        with backend_engine(
            problem, "vector", cache=False, chunk_size=16
        ) as engine:
            result = engine.sweep(keep_options=False)
            evaluated = engine.stats.candidate_evaluations
            combined = engine.stats.incremental_combines
        assert result.evaluations == engine.space.size
        assert evaluated == engine.space.size
        # Winners-only assembly: far fewer options built than evaluated.
        assert combined < evaluated

    @requires_numpy
    def test_brute_force_optimize_routes_distilled(self):
        problem = random_problem(52, clusters=3, choices_per_layer=3)
        serial_result = brute_force_optimize(problem, keep_options=False)
        with backend_engine(problem, "vector", cache=False) as engine:
            vector_result = brute_force_optimize(
                problem, engine=engine, keep_options=False
            )
        assert stream_signature(vector_result.options) == stream_signature(
            serial_result.options
        )

    def test_fold_winners_requires_distilled_accumulator(self):
        from repro.optimizer.result import ResultAccumulator

        accumulator = ResultAccumulator(
            space_size=4, strategy="brute-force", keep_options=True
        )
        with pytest.raises(OptimizerError, match="keep_options"):
            accumulator.fold_winners([], evaluated=4)


class TestVectorBackend:
    """Vector-specific contracts (equivalence runs in the shared sweeps)."""

    def test_degrades_to_serial_with_warning_without_numpy(self, monkeypatch):
        problem = case_study_problem()
        reference = stream_signature(EvaluationEngine(problem).evaluate_all())
        monkeypatch.setattr(engine_module, "_import_numpy", lambda: None)
        engine = backend_engine(problem, "vector")
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            options = list(engine.evaluate_all())
        assert stream_signature(options) == reference
        # Degradation is sticky (no warning spam, no import retry storm).
        assert stream_signature(engine.evaluate_all()) == reference
        assert engine._backend_impl._degraded is True
        assert engine.stats.topology_evaluations == 0

    @requires_numpy
    def test_replay_is_pure_cache_hits(self):
        problem = random_problem(17, clusters=4, choices_per_layer=2)
        with backend_engine(problem, "vector", chunk_size=8) as engine:
            list(engine.evaluate_all())
            combines = engine.stats.incremental_combines
            list(engine.evaluate_all())
            assert engine.stats.incremental_combines == combines
            assert engine.stats.cache_hits == engine.space.size

    @requires_numpy
    def test_wrong_arity_indices_rejected(self):
        problem = case_study_problem()
        with backend_engine(problem, "vector", cache=False) as engine:
            with pytest.raises(OptimizerError, match="choice indices"):
                list(engine.evaluate_many([(1, (0,))]))

    @requires_numpy
    def test_int_valued_costs_stay_bit_identical(self):
        # Specs built with int dollar amounts are legal; the scalar
        # paths must not flow int arithmetic while the float64 columns
        # produce floats (cluster_cost_terms coerces at construction).
        from repro.catalog.raid import RAID1
        from repro.catalog.registry import TechnologyRegistry
        from repro.cost.rates import LaborRate
        from repro.optimizer.space import OptimizationProblem
        from repro.sla.contract import Contract
        from repro.topology.builder import TopologyBuilder
        from repro.topology.node import NodeSpec

        registry = TechnologyRegistry()
        registry.register(RAID1(
            failover_minutes=1.0, monthly_controller_cost=30,
            monthly_labor_hours=2,
        ))
        volume = NodeSpec("volume", 0.015, 5.0, monthly_cost=170)
        system = (
            TopologyBuilder("int-costs")
            .storage("storage", volume, nodes=2)
            .build()
        )
        problem = OptimizationProblem(
            base_system=system,
            registry=registry,
            contract=Contract.linear(98.0, 100),
            labor_rate=LaborRate(30),
        )
        expected = stream_signature(
            EvaluationEngine(problem, backend="serial").evaluate_all()
        )
        with backend_engine(problem, "vector", chunk_size=2) as engine:
            assert stream_signature(engine.evaluate_all()) == expected

    @requires_numpy
    def test_payload_floats_are_plain_floats(self):
        # Options must pickle identically to serial ones, so no numpy
        # scalar may leak into availability/TCO fields.
        problem = case_study_problem()
        with backend_engine(problem, "vector", chunk_size=4) as engine:
            option = next(iter(engine.evaluate_all()))
        assert type(option.tco.total) is float
        assert type(option.availability.breakdown_probability) is float
        assert all(
            type(cluster.failover_contribution) is float
            for cluster in option.availability.clusters
        )


class TestPoolRegistry:
    """Ref-counted pool sharing: N engines, one executor, clean shutdown."""

    def _problems(self):
        return (
            random_problem(31, clusters=3, choices_per_layer=2),
            random_problem(32, clusters=3, choices_per_layer=2),
        )

    def test_two_process_engines_share_exactly_one_pool(self):
        registry = PoolRegistry()
        problem_a, problem_b = self._problems()
        with backend_engine(
            problem_a, "process", max_workers=1,
            pool_registry=registry, chunk_size=8,
        ) as engine_a, backend_engine(
            problem_b, "process", max_workers=1,
            pool_registry=registry, chunk_size=8,
        ) as engine_b:
            expected_a = stream_signature(
                EvaluationEngine(problem_a).evaluate_all()
            )
            expected_b = stream_signature(
                EvaluationEngine(problem_b).evaluate_all()
            )
            # Interleaved streams: the same workers recombine both
            # engines' term tables, keyed by engine uid.
            assert stream_signature(engine_a.evaluate_all()) == expected_a
            assert stream_signature(engine_b.evaluate_all()) == expected_b
            assert registry.stats.pools_created == 1
            assert engine_a._backend_impl._pool is engine_b._backend_impl._pool
            assert registry.holders("process", 1) == 2
            assert set(registry.published_uids()) == {
                engine_a.uid, engine_b.uid,
            }

    def test_last_close_shuts_the_shared_pool_down(self):
        registry = PoolRegistry()
        problem_a, problem_b = self._problems()
        engine_a = backend_engine(
            problem_a, "process", max_workers=1,
            pool_registry=registry, chunk_size=8,
        )
        engine_b = backend_engine(
            problem_b, "process", max_workers=1,
            pool_registry=registry, chunk_size=8,
        )
        list(engine_a.evaluate_all())
        list(engine_b.evaluate_all())
        engine_a.close()
        # One holder left: the executor (and table channel) stay up.
        assert registry.active_pools() == (("process", 1),)
        assert registry.stats.pools_closed == 0
        assert registry.has_table_channel()
        assert registry.published_uids() == (engine_b.uid,)
        engine_b.close()
        assert registry.active_pools() == ()
        assert registry.stats.pools_closed == 1
        assert not registry.has_table_channel()

    def test_thread_engines_share_pools_too(self):
        registry = PoolRegistry()
        problem_a, problem_b = self._problems()
        with backend_engine(
            problem_a, "thread", max_workers=2,
            pool_registry=registry, chunk_size=8,
        ) as engine_a, backend_engine(
            problem_b, "thread", max_workers=2,
            pool_registry=registry, chunk_size=8,
        ) as engine_b:
            list(engine_a.evaluate_all())
            list(engine_b.evaluate_all())
            assert registry.stats.pools_created == 1
            assert engine_a._backend_impl._pool is engine_b._backend_impl._pool

    def test_resize_moves_the_engine_to_a_new_keyed_pool(self):
        registry = PoolRegistry()
        problem = random_problem(33, clusters=3, choices_per_layer=2)
        with backend_engine(
            problem, "process", max_workers=1,
            pool_registry=registry, chunk_size=8,
        ) as engine:
            list(engine.evaluate_all())
            assert registry.active_pools() == (("process", 1),)
            engine.set_backend("process", max_workers=2)
            # The old lease is released immediately; the new width is
            # acquired lazily by the next stream.
            assert engine._backend_impl._pool is None
            assert registry.active_pools() == ()
            list(engine.evaluate_all())
            assert registry.active_pools() == (("process", 2),)
            assert engine.stats.cache_hits >= engine.space.size

    def test_worker_failure_invalidates_only_the_broken_pool(self):
        registry = PoolRegistry()
        problem_a, problem_b = self._problems()
        engine_a = backend_engine(
            problem_a, "process", max_workers=1,
            pool_registry=registry, cache=False, chunk_size=8,
        )
        engine_b = backend_engine(
            problem_b, "process", max_workers=1,
            pool_registry=registry, chunk_size=8,
        )
        try:
            list(engine_a.evaluate_all())
            original = engine_module._process_worker_chunk
            engine_module._process_worker_chunk = None  # unpicklable call
            try:
                with pytest.raises((EngineBackendError, OptimizerError)):
                    list(engine_a.evaluate_all())
            finally:
                engine_module._process_worker_chunk = original
            assert registry.stats.invalidations == 1
            # The sharing engine simply triggers a fresh pool.
            assert stream_signature(engine_b.evaluate_all()) == (
                stream_signature(EvaluationEngine(problem_b).evaluate_all())
            )
            assert registry.stats.pools_created == 2
        finally:
            engine_a.close()
            engine_b.close()
        assert registry.active_pools() == ()

    def test_engines_default_to_the_process_global_registry(self):
        engine = EvaluationEngine(case_study_problem())
        assert engine.pool_registry is pools_module.default_registry()

    def test_unknown_pool_kind_rejected(self):
        with pytest.raises(OptimizerError, match="pool kind"):
            PoolRegistry().acquire("fiber", 1)
        with pytest.raises(OptimizerError, match="workers"):
            PoolRegistry().acquire("thread", 0)


class TestTermTableChannels:
    """The worker-table channel: shm segments vs. the manager dict."""

    HAS_SHM = pools_module._shared_memory is not None

    def channels(self):
        return ("shm", "manager") if self.HAS_SHM else ("manager",)

    def test_resolve_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(pools_module.TABLE_CHANNEL_ENV_VAR, "manager")
        assert pools_module.resolve_table_backend("manager") == "manager"
        monkeypatch.delenv(pools_module.TABLE_CHANNEL_ENV_VAR)
        assert pools_module.resolve_table_backend("manager") == "manager"

    def test_resolve_unknown_rejected(self):
        with pytest.raises(OptimizerError, match="table-channel"):
            pools_module.resolve_table_backend("carrier-pigeon")

    def test_shm_degrades_to_manager_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(pools_module, "_shared_memory", None)
        assert pools_module.resolve_table_backend("shm") == "manager"
        registry = PoolRegistry(table_backend="shm")
        assert registry.table_channel_backend() == "manager"

    def test_process_streams_bit_identical_on_both_channels(self):
        problem = random_problem(34, clusters=3, choices_per_layer=2)
        expected = stream_signature(
            EvaluationEngine(problem).evaluate_all()
        )
        for channel in self.channels():
            registry = PoolRegistry(table_backend=channel)
            with backend_engine(
                problem, "process", max_workers=1,
                pool_registry=registry, chunk_size=8,
            ) as engine:
                assert stream_signature(engine.evaluate_all()) == expected, (
                    channel
                )

    @pytest.mark.skipif(not HAS_SHM, reason="shared_memory unavailable")
    def test_shm_segments_are_refcounted_and_unlinked(self):
        registry = PoolRegistry(table_backend="shm")
        handle = registry.acquire("process", 1)
        try:
            registry.publish(9101, {"table": list(range(32))})
            registry.publish(9101, {"table": list(range(32))})  # refcount 2
            assert registry.published_uids() == (9101,)
            assert registry.term_table_bytes() > 0
            assert registry.stats.tables_published == 2
            registry.retract(9101)
            # Still referenced by the second publisher: segment survives.
            assert registry.published_uids() == (9101,)
            registry.retract(9101)
            assert registry.published_uids() == ()
            assert registry.term_table_bytes() == 0
            assert registry.stats.tables_retracted == 2
        finally:
            handle.release()
        assert not registry.has_table_channel()

    @pytest.mark.skipif(not HAS_SHM, reason="shared_memory unavailable")
    def test_channel_teardown_reclaims_leftover_segments(self):
        registry = PoolRegistry(table_backend="shm")
        handle = registry.acquire("process", 1)
        registry.publish(9102, {"table": [1.0, 2.0, 3.0]})
        assert registry.term_table_bytes() > 0
        # Releasing the last pool lease tears the channel down even
        # though the publisher never retracted (engine closed while
        # its tables were still up).
        handle.release()
        assert registry.term_table_bytes() == 0
        assert not registry.has_table_channel()


def test_backend_constants_are_consistent():
    assert set(ENGINE_BACKENDS) == set(engine_module._BACKEND_TYPES)
    assert ProcessBackend.name == "process"
    assert VectorBackend.name == "vector"
    assert set(TERM_TABLE_BACKENDS) <= set(ENGINE_BACKENDS)
