"""Exception hierarchy and seeded-randomness helpers."""

from __future__ import annotations

import random

import pytest

from repro import errors
from repro.rng import DEFAULT_SEED, make_rng, spawn


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ValidationError",
            "TopologyError",
            "CatalogError",
            "OptimizerError",
            "CloudError",
            "ProvisioningError",
            "ResourceNotFoundError",
            "BrokerError",
            "InsufficientTelemetryError",
            "SimulationError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError), name

    def test_validation_error_is_value_error(self):
        # Callers using stdlib idioms still catch our validation errors.
        assert issubclass(errors.ValidationError, ValueError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(errors.CatalogError, KeyError)
        assert issubclass(errors.ResourceNotFoundError, KeyError)

    def test_topology_error_is_validation_error(self):
        assert issubclass(errors.TopologyError, errors.ValidationError)

    def test_cloud_error_family(self):
        assert issubclass(errors.ProvisioningError, errors.CloudError)
        assert issubclass(errors.ResourceNotFoundError, errors.CloudError)

    def test_one_except_clause_catches_all(self):
        try:
            raise errors.InsufficientTelemetryError("no data")
        except errors.ReproError as exc:
            assert "no data" in str(exc)


class TestRng:
    def test_none_uses_default_seed(self):
        assert make_rng(None).random() == random.Random(DEFAULT_SEED).random()

    def test_int_seed_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_existing_rng_passes_through(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng

    def test_spawn_is_deterministic(self):
        a = spawn(random.Random(5))
        b = spawn(random.Random(5))
        assert a.random() == b.random()

    def test_spawn_children_independent_of_order(self):
        parent = random.Random(9)
        first, second = spawn(parent), spawn(parent)
        assert first.random() != second.random()

    def test_default_seed_is_fixed_constant(self):
        # Examples and benches rely on run-to-run identical output.
        assert DEFAULT_SEED == 20170612
