"""Telemetry snapshots: JSON round-trips and restart survival."""

from __future__ import annotations

import pytest

from repro.broker.knowledge_base import KnowledgeBase
from repro.broker.persistence import (
    load_telemetry,
    save_telemetry,
    telemetry_from_dict,
    telemetry_to_dict,
)
from repro.broker.service import BrokerService
from repro.broker.telemetry import TelemetryStore
from repro.cloud.providers import metalcloud
from repro.errors import ValidationError
from repro.units import MINUTES_PER_YEAR


@pytest.fixture
def populated_store() -> TelemetryStore:
    store = TelemetryStore()
    store.register_exposure("p", "vm", 10, 2 * MINUTES_PER_YEAR)
    for _ in range(12):
        store.record_failure("p", "vm")
    store.record_outage("p", "vm", 480.0)
    store.record_failover("p", "vm", 9.5)
    store.record_failover("p", "vm", 10.5)
    store.register_exposure("q", "volume", 5, MINUTES_PER_YEAR)
    return store


class TestRoundTrip:
    def test_dict_roundtrip_preserves_estimates(self, populated_store):
        restored = telemetry_from_dict(telemetry_to_dict(populated_store))
        assert restored.down_probability("p", "vm") == (
            populated_store.down_probability("p", "vm")
        )
        assert restored.failures_per_year("p", "vm") == (
            populated_store.failures_per_year("p", "vm")
        )
        assert restored.failover_minutes("p", "vm") == (
            populated_store.failover_minutes("p", "vm")
        )

    def test_roundtrip_preserves_all_components(self, populated_store):
        restored = telemetry_from_dict(telemetry_to_dict(populated_store))
        assert restored.observed_components() == (
            populated_store.observed_components()
        )

    def test_file_roundtrip(self, populated_store, tmp_path):
        path = tmp_path / "telemetry.json"
        save_telemetry(populated_store, path)
        restored = load_telemetry(path)
        assert restored.exposure_years("p", "vm") == pytest.approx(20.0)

    def test_snapshot_is_versioned(self, populated_store):
        assert telemetry_to_dict(populated_store)["snapshot_version"] == 1

    def test_rejects_unknown_version(self, populated_store):
        payload = telemetry_to_dict(populated_store)
        payload["snapshot_version"] = 42
        with pytest.raises(ValidationError, match="snapshot_version"):
            telemetry_from_dict(payload)

    def test_rejects_negative_statistics(self, populated_store):
        payload = telemetry_to_dict(populated_store)
        payload["components"][0]["failures"] = -1
        with pytest.raises(ValidationError, match="negative"):
            telemetry_from_dict(payload)

    def test_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="invalid telemetry"):
            load_telemetry(path)


class TestBrokerRestart:
    def test_broker_resumes_from_snapshot(self, tmp_path):
        """A broker restarted from a snapshot gives identical advice."""
        first = BrokerService((metalcloud(),))
        first.observe_provider("metalcloud", years=6.0, seed=61)
        path = tmp_path / "telemetry.json"
        save_telemetry(first.telemetry, path)

        restarted = BrokerService((metalcloud(),), telemetry=load_telemetry(path))
        original = KnowledgeBase(first.telemetry).estimate("metalcloud", "vm")
        restored = restarted.knowledge_base.estimate("metalcloud", "vm")
        assert restored.down_probability == original.down_probability
        assert restored.failures_per_year == original.failures_per_year
        assert restored.failover_minutes == original.failover_minutes

    def test_snapshot_accumulates_across_sessions(self, tmp_path):
        """Observe, snapshot, reload, observe more: exposure accumulates."""
        path = tmp_path / "telemetry.json"
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=2.0, seed=67)
        save_telemetry(broker.telemetry, path)

        resumed = BrokerService((metalcloud(),), telemetry=load_telemetry(path))
        before = resumed.telemetry.exposure_years("metalcloud", "vm")
        resumed.observe_provider("metalcloud", years=2.0, seed=71)
        after = resumed.telemetry.exposure_years("metalcloud", "vm")
        assert after == pytest.approx(2 * before)
