"""ClusterSpec: k-redundancy shape and validation."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


@pytest.fixture
def node() -> NodeSpec:
    return NodeSpec("host", 0.01, 4.0, 100.0)


class TestConstruction:
    def test_bare_cluster(self, node):
        cluster = ClusterSpec("c", Layer.COMPUTE, node, total_nodes=3)
        assert cluster.active_nodes == 3
        assert not cluster.has_ha

    def test_ha_cluster_shape(self, node):
        cluster = ClusterSpec(
            "c", Layer.COMPUTE, node, total_nodes=4,
            standby_tolerance=1, failover_minutes=10.0,
        )
        assert cluster.active_nodes == 3
        assert cluster.has_ha

    def test_rejects_empty_name(self, node):
        with pytest.raises(ValidationError, match="name"):
            ClusterSpec("", Layer.COMPUTE, node, total_nodes=1)

    def test_rejects_zero_nodes(self, node):
        with pytest.raises(ValidationError, match="total_nodes"):
            ClusterSpec("c", Layer.COMPUTE, node, total_nodes=0)

    def test_rejects_tolerance_equal_to_nodes(self, node):
        with pytest.raises(ValidationError, match="K-hat"):
            ClusterSpec("c", Layer.COMPUTE, node, total_nodes=2, standby_tolerance=2)

    def test_rejects_negative_tolerance(self, node):
        with pytest.raises(ValidationError, match="K-hat"):
            ClusterSpec("c", Layer.COMPUTE, node, total_nodes=2, standby_tolerance=-1)

    def test_rejects_failover_without_standby(self, node):
        # DESIGN.md semantics: no HA means no failover mechanism.
        with pytest.raises(ValidationError, match="failover"):
            ClusterSpec(
                "c", Layer.COMPUTE, node, total_nodes=2, failover_minutes=5.0
            )

    def test_rejects_negative_failover(self, node):
        with pytest.raises(ValidationError, match="failover_minutes"):
            ClusterSpec(
                "c", Layer.COMPUTE, node, total_nodes=2,
                standby_tolerance=1, failover_minutes=-1.0,
            )

    def test_rejects_negative_ha_costs(self, node):
        with pytest.raises(ValidationError, match="monthly_ha_infra_cost"):
            ClusterSpec(
                "c", Layer.COMPUTE, node, total_nodes=2,
                standby_tolerance=1, monthly_ha_infra_cost=-1.0,
            )

    def test_rejects_non_layer(self, node):
        with pytest.raises(ValidationError, match="layer"):
            ClusterSpec("c", "compute", node, total_nodes=1)  # type: ignore[arg-type]


class TestDerived:
    def test_monthly_node_cost(self, node):
        cluster = ClusterSpec("c", Layer.COMPUTE, node, total_nodes=3)
        assert cluster.monthly_node_cost == pytest.approx(300.0)

    def test_describe_shows_shape(self, node):
        cluster = ClusterSpec(
            "compute", Layer.COMPUTE, node, total_nodes=4,
            standby_tolerance=1, failover_minutes=10.0,
            ha_technology="hypervisor-n+1",
        )
        assert "3+1" in cluster.describe()
        assert "hypervisor-n+1" in cluster.describe()


class TestWithHa:
    def test_with_ha_adds_nodes(self, node):
        bare = ClusterSpec("c", Layer.COMPUTE, node, total_nodes=3)
        clustered = bare.with_ha(
            standby_tolerance=1, failover_minutes=8.0,
            ha_technology="test-ha", extra_nodes=1,
        )
        assert clustered.total_nodes == 4
        assert clustered.active_nodes == 3
        assert clustered.ha_technology == "test-ha"

    def test_without_ha_strips_to_active_nodes(self, node):
        clustered = ClusterSpec(
            "c", Layer.COMPUTE, node, total_nodes=4,
            standby_tolerance=1, failover_minutes=8.0,
            ha_technology="test-ha", monthly_ha_infra_cost=100.0,
            monthly_ha_labor_hours=2.0,
        )
        bare = clustered.without_ha()
        assert bare.total_nodes == 3
        assert bare.standby_tolerance == 0
        assert bare.failover_minutes == 0.0
        assert bare.ha_technology == "none"
        assert bare.monthly_ha_infra_cost == 0.0
        assert bare.monthly_ha_labor_hours == 0.0

    def test_ha_roundtrip_preserves_active_set(self, node):
        bare = ClusterSpec("c", Layer.COMPUTE, node, total_nodes=3)
        roundtripped = bare.with_ha(
            standby_tolerance=2, failover_minutes=5.0,
            ha_technology="x", extra_nodes=2,
        ).without_ha()
        assert roundtripped.total_nodes == bare.total_nodes
