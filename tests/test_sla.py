"""UptimeSLA, slippage conversion, and Contract."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sla.contract import Contract
from repro.sla.penalty import LinearPenalty, NoPenalty
from repro.sla.sla import UptimeSLA
from repro.sla.slippage import expected_slippage_hours_per_month


class TestUptimeSLA:
    def test_target_fraction(self):
        assert UptimeSLA(98.0).target_fraction == pytest.approx(0.98)

    def test_allowed_downtime_hours(self):
        # 2% of 730 hours = 14.6 h/month.
        assert UptimeSLA(98.0).allowed_downtime_hours_per_month == pytest.approx(14.6)

    def test_is_met_by_boundary(self):
        sla = UptimeSLA(99.0)
        assert sla.is_met_by(0.99)
        assert sla.is_met_by(0.995)
        assert not sla.is_met_by(0.9899)

    def test_hundred_percent_sla(self):
        sla = UptimeSLA(100.0)
        assert sla.is_met_by(1.0)
        assert not sla.is_met_by(0.999999)
        assert sla.allowed_downtime_hours_per_month == 0.0

    def test_rejects_zero_and_above_hundred(self):
        with pytest.raises(ValidationError):
            UptimeSLA(0.0)
        with pytest.raises(ValidationError):
            UptimeSLA(100.5)

    def test_describe(self):
        assert "98" in UptimeSLA(98.0).describe()


class TestSlippage:
    def test_paper_conversion(self):
        # Shortfall of 1% -> 0.01 * 525600 / (12*60) = 7.3 hours/month.
        hours = expected_slippage_hours_per_month(0.97, UptimeSLA(98.0))
        assert hours == pytest.approx(7.3)

    def test_meeting_sla_is_zero(self):
        assert expected_slippage_hours_per_month(0.99, UptimeSLA(98.0)) == 0.0

    def test_exactly_at_sla_is_zero(self):
        assert expected_slippage_hours_per_month(0.98, UptimeSLA(98.0)) == 0.0

    def test_rejects_bad_uptime(self):
        with pytest.raises(ValidationError):
            expected_slippage_hours_per_month(1.5, UptimeSLA(98.0))

    def test_monotone_in_shortfall(self):
        sla = UptimeSLA(99.0)
        worse = expected_slippage_hours_per_month(0.95, sla)
        bad = expected_slippage_hours_per_month(0.97, sla)
        assert worse > bad > 0.0


class TestContract:
    def test_linear_constructor(self):
        contract = Contract.linear(98.0, 100.0)
        assert isinstance(contract.penalty, LinearPenalty)
        assert contract.sla.target_percent == 98.0

    def test_expected_penalty_matches_eq5(self):
        contract = Contract.linear(98.0, 100.0)
        # 1% shortfall -> 7.3 h -> $730.
        assert contract.expected_monthly_penalty(0.97) == pytest.approx(730.0)

    def test_no_penalty_when_sla_met(self):
        contract = Contract.linear(98.0, 100.0)
        assert contract.expected_monthly_penalty(0.985) == 0.0

    def test_no_penalty_clause(self):
        contract = Contract(UptimeSLA(99.9), NoPenalty())
        assert contract.expected_monthly_penalty(0.5) == 0.0

    def test_describe_combines_parts(self):
        text = Contract.linear(98.0, 100.0).describe()
        assert "98" in text and "100" in text
