"""Unit-conversion helpers: the constants Eq. 5 depends on."""

from __future__ import annotations

import math

import pytest

from repro import units


class TestConstants:
    def test_delta_is_the_papers_525600(self):
        assert units.MINUTES_PER_YEAR == 525_600

    def test_hours_per_month_is_delta_over_12x60(self):
        assert units.HOURS_PER_MONTH == pytest.approx(525_600 / (12 * 60))

    def test_hours_per_month_is_730(self):
        assert units.HOURS_PER_MONTH == pytest.approx(730.0)


class TestConversions:
    def test_minutes_hours_roundtrip(self):
        assert units.hours_to_minutes(units.minutes_to_hours(90.0)) == pytest.approx(90.0)

    def test_yearly_monthly_roundtrip(self):
        assert units.monthly_to_yearly(units.yearly_to_monthly(1200.0)) == pytest.approx(1200.0)

    def test_probability_to_minutes_per_year(self):
        # 1% downtime over a year is 5256 minutes.
        assert units.probability_to_minutes_per_year(0.01) == pytest.approx(5256.0)

    def test_probability_to_hours_per_month(self):
        # Eq. 5's conversion: 1% downtime is 7.3 hours per month.
        assert units.probability_to_hours_per_month(0.01) == pytest.approx(7.3)

    def test_zero_probability_maps_to_zero_everywhere(self):
        assert units.probability_to_minutes_per_year(0.0) == 0.0
        assert units.probability_to_hours_per_month(0.0) == 0.0


class TestNines:
    def test_three_nines(self):
        assert units.availability_to_nines(0.999) == pytest.approx(3.0)

    def test_five_nines(self):
        assert units.availability_to_nines(0.99999) == pytest.approx(5.0)

    def test_perfect_availability_is_infinite_nines(self):
        assert math.isinf(units.availability_to_nines(1.0))

    def test_zero_availability_is_zero_nines(self):
        assert units.availability_to_nines(0.0) == 0.0

    def test_nines_monotone_in_availability(self):
        values = [0.9, 0.99, 0.999, 0.9999]
        nines = [units.availability_to_nines(value) for value in values]
        assert nines == sorted(nines)


class TestFormatting:
    def test_format_money_has_thousands_separators(self):
        assert units.format_money(1234.5) == "$1,234.50"

    def test_format_money_negative(self):
        assert units.format_money(-2.5) == "-$2.50"

    def test_format_money_zero(self):
        assert units.format_money(0.0) == "$0.00"

    def test_format_percent(self):
        assert units.format_percent(0.98) == "98.0000%"

    def test_format_percent_custom_places(self):
        assert units.format_percent(0.12345, places=1) == "12.3%"
