"""Constrained optimization: budgets and uptime floors."""

from __future__ import annotations

import pytest

from repro.errors import OptimizerError
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.constraints import constrained_optimize, is_feasible


class TestFeasibility:
    def test_budget_filter(self, paper_problem):
        sweep = brute_force_optimize(paper_problem)
        option8 = sweep.option(8)
        assert not is_feasible(option8, max_ha_budget=500.0)
        assert is_feasible(option8, max_ha_budget=2000.0)

    def test_uptime_filter(self, paper_problem):
        sweep = brute_force_optimize(paper_problem)
        assert not is_feasible(sweep.option(1), min_uptime=0.99)
        assert is_feasible(sweep.option(8), min_uptime=0.99)

    def test_no_constraints_is_always_feasible(self, paper_problem):
        sweep = brute_force_optimize(paper_problem)
        assert all(is_feasible(option) for option in sweep.options)


class TestConstrainedOptimize:
    def test_unconstrained_matches_eq6(self, paper_problem):
        result = constrained_optimize(paper_problem)
        assert result.best.option_id == 3
        assert result.constraint_cost == 0.0

    def test_budget_excludes_expensive_options(self, paper_problem):
        result = constrained_optimize(paper_problem, max_ha_budget=300.0)
        ids = {option.option_id for option in result.feasible}
        # Only no-HA, network-only and storage-only fit under $300.
        assert ids == {1, 2, 3}
        assert result.best.option_id == 3

    def test_tiny_budget_forces_no_ha(self, paper_problem):
        result = constrained_optimize(paper_problem, max_ha_budget=0.0)
        assert result.best.option_id == 1
        assert result.constraint_cost > 0.0

    def test_uptime_floor_overrides_tco(self, paper_problem):
        # Demanding 99% uptime forces past the free optimum (#3 at 97.8%).
        result = constrained_optimize(paper_problem, min_uptime=0.99)
        assert result.best.option_id == 5
        assert result.constraint_cost == pytest.approx(540.0 - 395.35, abs=0.01)

    def test_extreme_floor_forces_all_ha(self, paper_problem):
        result = constrained_optimize(paper_problem, min_uptime=0.995)
        assert result.best.option_id == 8

    def test_joint_constraints(self, paper_problem):
        result = constrained_optimize(
            paper_problem, max_ha_budget=600.0, min_uptime=0.99
        )
        assert result.best.option_id == 5

    def test_infeasible_raises_with_context(self, paper_problem):
        with pytest.raises(OptimizerError, match="no option satisfies"):
            constrained_optimize(
                paper_problem, max_ha_budget=100.0, min_uptime=0.99
            )

    def test_invalid_constraints_rejected(self, paper_problem):
        with pytest.raises(OptimizerError):
            constrained_optimize(paper_problem, max_ha_budget=-1.0)
        with pytest.raises(OptimizerError):
            constrained_optimize(paper_problem, min_uptime=1.5)

    def test_describe_reports_cost_of_constraints(self, paper_problem):
        text = constrained_optimize(paper_problem, min_uptime=0.99).describe()
        assert "constraint cost" in text

    def test_constraint_cost_monotone_in_floor(self, paper_problem):
        costs = [
            constrained_optimize(paper_problem, min_uptime=floor).constraint_cost
            for floor in (0.97, 0.99, 0.995)
        ]
        assert costs == sorted(costs)
