"""HA technology catalog: every technology's shape and cost transform."""

from __future__ import annotations

import pytest

from repro.catalog.base import NoHA
from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.multipath import StorageMultipath
from repro.catalog.network import BGPDualCircuit, DualGateway
from repro.catalog.os_cluster import OSCluster
from repro.catalog.raid import RAID1, RAID5, RAID6, RAID10
from repro.catalog.sds import SDSReplication
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


@pytest.fixture
def compute_cluster():
    return ClusterSpec(
        "c", Layer.COMPUTE, NodeSpec("host", 0.01, 6.0, 300.0), total_nodes=3
    )


@pytest.fixture
def storage_cluster():
    return ClusterSpec(
        "st", Layer.STORAGE, NodeSpec("disk", 0.02, 5.0, 100.0), total_nodes=1
    )


@pytest.fixture
def multi_disk_cluster():
    return ClusterSpec(
        "st", Layer.STORAGE, NodeSpec("disk", 0.02, 5.0, 100.0), total_nodes=4
    )


@pytest.fixture
def network_cluster():
    return ClusterSpec(
        "n", Layer.NETWORK, NodeSpec("gw", 0.005, 4.0, 150.0), total_nodes=1
    )


class TestNoHA:
    def test_identity(self, compute_cluster):
        assert NoHA().apply(compute_cluster) == compute_cluster

    def test_applies_to_any_layer(self, storage_cluster, network_cluster):
        assert NoHA().apply(storage_cluster) == storage_cluster
        assert NoHA().apply(network_cluster) == network_cluster

    def test_rejects_already_clustered(self, compute_cluster):
        clustered = compute_cluster.with_ha(1, 5.0, "x", extra_nodes=1)
        with pytest.raises(CatalogError):
            NoHA().apply(clustered)


class TestHypervisorHA:
    def test_three_plus_one_shape(self, compute_cluster):
        applied = HypervisorHA(standby_nodes=1, failover_minutes=10.0).apply(compute_cluster)
        assert applied.total_nodes == 4
        assert applied.standby_tolerance == 1
        assert applied.active_nodes == 3
        assert applied.failover_minutes == 10.0

    def test_cost_includes_standby_and_licenses(self, compute_cluster):
        tech = HypervisorHA(
            standby_nodes=1, monthly_license_per_node=20.0, monthly_labor_hours=4.0
        )
        applied = tech.apply(compute_cluster)
        # one standby host ($300) + 4 licenses ($80).
        assert applied.monthly_ha_infra_cost == pytest.approx(380.0)
        assert applied.monthly_ha_labor_hours == 4.0

    def test_n_plus_two(self, compute_cluster):
        applied = HypervisorHA(standby_nodes=2).apply(compute_cluster)
        assert applied.total_nodes == 5
        assert applied.standby_tolerance == 2

    def test_wrong_layer_rejected(self, storage_cluster):
        with pytest.raises(CatalogError, match="compute"):
            HypervisorHA().apply(storage_cluster)

    def test_rejects_zero_standby(self):
        with pytest.raises(CatalogError):
            HypervisorHA(standby_nodes=0)

    def test_name_encodes_standby_count(self):
        assert HypervisorHA(standby_nodes=2).name == "hypervisor-n+2"


class TestRaid:
    def test_raid1_mirrors_single_volume(self, storage_cluster):
        applied = RAID1().apply(storage_cluster)
        assert applied.total_nodes == 2
        assert applied.standby_tolerance == 1

    def test_raid1_triple_mirror(self, storage_cluster):
        applied = RAID1(mirror_count=3).apply(storage_cluster)
        assert applied.total_nodes == 3
        assert applied.standby_tolerance == 2
        assert applied.ha_technology == "raid-1x3"

    def test_raid1_cost_is_extra_copies(self, storage_cluster):
        applied = RAID1(monthly_controller_cost=30.0).apply(storage_cluster)
        # one extra disk ($100) + controller ($30).
        assert applied.monthly_ha_infra_cost == pytest.approx(130.0)

    def test_raid5_adds_one_parity(self, multi_disk_cluster):
        applied = RAID5().apply(multi_disk_cluster)
        assert applied.total_nodes == 5
        assert applied.standby_tolerance == 1

    def test_raid6_adds_two_parity(self, multi_disk_cluster):
        applied = RAID6().apply(multi_disk_cluster)
        assert applied.total_nodes == 6
        assert applied.standby_tolerance == 2

    def test_raid6_rejects_single_disk(self, storage_cluster):
        with pytest.raises(CatalogError, match="raid-1"):
            RAID6().apply(storage_cluster)

    def test_raid10_doubles_disks(self, multi_disk_cluster):
        applied = RAID10().apply(multi_disk_cluster)
        assert applied.total_nodes == 8
        assert applied.standby_tolerance == 1  # conservative guarantee

    def test_wrong_layer_rejected(self, compute_cluster):
        with pytest.raises(CatalogError, match="storage"):
            RAID1().apply(compute_cluster)

    def test_rejects_single_mirror(self):
        with pytest.raises(CatalogError):
            RAID1(mirror_count=1)


class TestNetwork:
    def test_dual_gateway_pairs_up(self, network_cluster):
        applied = DualGateway().apply(network_cluster)
        assert applied.total_nodes == 2
        assert applied.standby_tolerance == 1
        assert applied.active_nodes == 1

    def test_dual_gateway_cost(self, network_cluster):
        applied = DualGateway(monthly_vip_cost=25.0).apply(network_cluster)
        # one extra gateway ($150) + VIP ($25).
        assert applied.monthly_ha_infra_cost == pytest.approx(175.0)

    def test_bgp_prices_circuit_not_hardware(self, network_cluster):
        applied = BGPDualCircuit(monthly_circuit_cost=300.0).apply(network_cluster)
        assert applied.monthly_ha_infra_cost == pytest.approx(300.0)
        assert applied.total_nodes == 2

    def test_bgp_failover_slower_than_vrrp(self):
        assert BGPDualCircuit().failover_minutes > DualGateway().failover_minutes

    def test_wrong_layer_rejected(self, compute_cluster):
        with pytest.raises(CatalogError):
            DualGateway().apply(compute_cluster)


class TestFutureWorkTechnologies:
    def test_os_cluster_shape(self, compute_cluster):
        applied = OSCluster(standby_nodes=1).apply(compute_cluster)
        assert applied.total_nodes == 4
        assert applied.standby_tolerance == 1

    def test_os_cluster_slower_than_hypervisor(self):
        assert OSCluster().failover_minutes > HypervisorHA().failover_minutes

    def test_sds_replication_shape(self, storage_cluster):
        applied = SDSReplication(replica_count=3).apply(storage_cluster)
        assert applied.total_nodes == 3
        assert applied.standby_tolerance == 2

    def test_sds_rejects_single_replica(self):
        with pytest.raises(CatalogError):
            SDSReplication(replica_count=1)

    def test_multipath_near_instant_failover(self, storage_cluster):
        applied = StorageMultipath().apply(storage_cluster)
        assert applied.failover_minutes < 1.0
        assert applied.total_nodes == 2

    def test_multipath_cost_is_ports_not_disks(self, storage_cluster):
        applied = StorageMultipath(monthly_path_cost=40.0).apply(storage_cluster)
        assert applied.monthly_ha_infra_cost == pytest.approx(40.0)


class TestAvailabilityImprovement:
    """Every technology must improve its cluster's breakdown availability."""

    @pytest.mark.parametrize(
        "technology,fixture_name",
        [
            (HypervisorHA(), "compute_cluster"),
            (OSCluster(), "compute_cluster"),
            (RAID1(), "storage_cluster"),
            (RAID10(), "multi_disk_cluster"),
            (RAID5(), "multi_disk_cluster"),
            (RAID6(), "multi_disk_cluster"),
            (SDSReplication(), "storage_cluster"),
            (StorageMultipath(), "storage_cluster"),
            (DualGateway(), "network_cluster"),
            (BGPDualCircuit(), "network_cluster"),
        ],
        ids=lambda value: value.name if hasattr(value, "name") else value,
    )
    def test_up_probability_increases(self, technology, fixture_name, request):
        from repro.availability.cluster_math import cluster_up_probability

        cluster = request.getfixturevalue(fixture_name)
        assert cluster_up_probability(technology.apply(cluster)) > (
            cluster_up_probability(cluster)
        )
