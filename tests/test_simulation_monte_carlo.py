"""Monte Carlo aggregation and analytic-model validation (E6)."""

from __future__ import annotations

import pytest

from repro.availability.model import evaluate_availability
from repro.errors import SimulationError
from repro.simulation.monte_carlo import monte_carlo
from repro.simulation.validation import validate_against_model
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.units import MINUTES_PER_YEAR


@pytest.fixture
def system():
    host = NodeSpec("host", 0.01, 6.0)
    disk = NodeSpec("disk", 0.02, 5.0)
    return (
        TopologyBuilder("s")
        .compute("c", host, nodes=3, standby_tolerance=1, failover_minutes=10.0)
        .storage("st", disk, nodes=2, standby_tolerance=1, failover_minutes=1.0)
        .build()
    )


class TestMonteCarlo:
    def test_reproducible_with_seed(self, system):
        a = monte_carlo(system, replications=10, seed=7)
        b = monte_carlo(system, replications=10, seed=7)
        assert a.mean_availability == b.mean_availability

    def test_replication_count_respected(self, system):
        result = monte_carlo(system, replications=7, seed=1)
        assert result.replications == 7
        assert len(result.runs) == 7

    def test_ci_brackets_mean(self, system):
        result = monte_carlo(system, replications=20, seed=2)
        low, high = result.availability_ci95
        assert low <= result.mean_availability <= high

    def test_more_replications_tighter_ci(self, system):
        small = monte_carlo(system, replications=10, seed=3)
        large = monte_carlo(system, replications=80, seed=3)
        small_width = small.availability_ci95[1] - small.availability_ci95[0]
        large_width = large.availability_ci95[1] - large.availability_ci95[0]
        assert large_width < small_width

    def test_fractions_decompose_downtime(self, system):
        result = monte_carlo(system, replications=10, seed=4)
        assert 1.0 - result.mean_availability == pytest.approx(
            result.mean_breakdown_fraction + result.mean_failover_fraction
        )

    def test_rejects_zero_replications(self, system):
        with pytest.raises(SimulationError):
            monte_carlo(system, replications=0)

    def test_describe_mentions_ci(self, system):
        assert "CI" in monte_carlo(system, replications=5, seed=5).describe()


class TestValidation:
    def test_analytic_inside_ci(self, system):
        # The headline E6 claim at test scale: 60 replications of a year.
        report = validate_against_model(system, replications=60, seed=11)
        assert report.analytic_inside_ci, report.describe()

    def test_gap_is_small(self, system):
        report = validate_against_model(system, replications=60, seed=12)
        assert report.absolute_error < 0.005

    def test_breakdown_estimates_close(self, system):
        report = validate_against_model(system, replications=60, seed=13)
        analytic_bs = report.analytic.breakdown_probability
        simulated_bs = report.simulated.mean_breakdown_fraction
        assert simulated_bs == pytest.approx(analytic_bs, rel=0.35)

    def test_failover_estimates_close(self, system):
        report = validate_against_model(system, replications=60, seed=14)
        analytic_fs = report.analytic.failover_probability
        simulated_fs = report.simulated.mean_failover_fraction
        assert simulated_fs == pytest.approx(analytic_fs, rel=0.5)

    def test_validates_case_study_options(self, paper_problem):
        from repro.optimizer.brute_force import brute_force_optimize

        result = brute_force_optimize(paper_problem)
        for option_id in (1, 3, 8):
            option = result.option(option_id)
            report = validate_against_model(
                option.system, replications=40, seed=100 + option_id
            )
            assert report.absolute_error < 0.01, report.describe()

    def test_overlap_fraction_is_tiny(self, system):
        # Footnote 2's approximation: breakdown-during-failover time is
        # negligible at realistic parameters.
        report = validate_against_model(system, replications=30, seed=15)
        assert report.simulated.mean_overlap_fraction < 1e-4

    def test_describe_reports_both_estimators(self, system):
        text = validate_against_model(system, replications=5, seed=16).describe()
        assert "analytic" in text and "simulated" in text
