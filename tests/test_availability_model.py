"""Top-level availability evaluation (Eq. 1 and 4) and DowntimeBudget."""

from __future__ import annotations

import pytest

from repro.availability.breakdown import breakdown_downtime_probability
from repro.availability.downtime import DowntimeBudget
from repro.availability.failover import failover_downtime_probability
from repro.availability.model import evaluate_availability, uptime_probability
from repro.errors import ValidationError
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec


@pytest.fixture
def system():
    host = NodeSpec("host", 0.01, 6.0)
    disk = NodeSpec("disk", 0.02, 5.0)
    return (
        TopologyBuilder("s")
        .compute("c", host, nodes=4, standby_tolerance=1, failover_minutes=10.0)
        .storage("st", disk, nodes=2, standby_tolerance=1, failover_minutes=1.0)
        .build()
    )


class TestEvaluate:
    def test_ds_is_bs_plus_fs(self, system):
        report = evaluate_availability(system)
        assert report.downtime_probability == pytest.approx(
            report.breakdown_probability + report.failover_probability
        )

    def test_us_is_complement(self, system):
        report = evaluate_availability(system)
        assert report.uptime_probability == pytest.approx(
            1.0 - report.downtime_probability
        )

    def test_matches_component_functions(self, system):
        report = evaluate_availability(system)
        assert report.breakdown_probability == pytest.approx(
            breakdown_downtime_probability(system)
        )
        assert report.failover_probability == pytest.approx(
            failover_downtime_probability(system)
        )

    def test_per_cluster_entries_in_chain_order(self, system):
        report = evaluate_availability(system)
        assert [entry.name for entry in report.clusters] == ["c", "st"]

    def test_cluster_up_and_breakdown_are_complements(self, system):
        report = evaluate_availability(system)
        for entry in report.clusters:
            assert entry.up_probability + entry.breakdown_probability == pytest.approx(1.0)

    def test_uptime_probability_shortcut(self, system):
        assert uptime_probability(system) == pytest.approx(
            evaluate_availability(system).uptime_probability
        )

    def test_describe_mentions_terms(self, system):
        text = evaluate_availability(system).describe()
        assert "B_s" in text and "F_s" in text


class TestDowntimeBudget:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            DowntimeBudget(1.5)
        with pytest.raises(ValidationError):
            DowntimeBudget(-0.1)

    def test_availability_complement(self):
        assert DowntimeBudget(0.02).availability == pytest.approx(0.98)

    def test_minutes_per_year(self):
        assert DowntimeBudget(0.01).minutes_per_year == pytest.approx(5256.0)

    def test_hours_per_month(self):
        assert DowntimeBudget(0.01).hours_per_month == pytest.approx(7.3)

    def test_nines(self):
        assert DowntimeBudget(0.001).nines == pytest.approx(3.0)

    def test_describe_contains_percentage(self):
        assert "%" in DowntimeBudget(0.02).describe()

    def test_report_budget_clamps_rounding(self, system):
        report = evaluate_availability(system)
        budget = report.budget
        assert 0.0 <= budget.downtime_probability <= 1.0
