"""Property-based tests on the optimizer: all searches agree.

The central invariant of the reproduction: the pruned search (§III-C)
and the branch-and-bound extension must return the same minimum TCO as
exhaustive enumeration on *any* well-formed problem, not just the case
study.  Problems are generated from seeded generators to keep hypothesis
shrinking effective.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.pareto import dominates, pareto_frontier
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.workloads.generators import random_problem

problem_seeds = st.integers(min_value=0, max_value=10_000)


class TestSearchAgreement:
    @given(seed=problem_seeds)
    @settings(max_examples=40, deadline=None)
    def test_pruned_matches_brute_force(self, seed):
        problem = random_problem(seed, clusters=3, choices_per_layer=2)
        brute = brute_force_optimize(problem)
        pruned = pruned_optimize(problem)
        assert pruned.best.tco.total == pytest.approx(brute.best.tco.total)

    @given(seed=problem_seeds)
    @settings(max_examples=40, deadline=None)
    def test_branch_and_bound_matches_brute_force(self, seed):
        problem = random_problem(seed, clusters=3, choices_per_layer=2)
        brute = brute_force_optimize(problem)
        bnb = branch_and_bound_optimize(problem)
        assert bnb.best.tco.total == pytest.approx(brute.best.tco.total)

    @given(seed=problem_seeds)
    @settings(max_examples=15, deadline=None)
    def test_agreement_on_wider_spaces(self, seed):
        problem = random_problem(seed, clusters=4, choices_per_layer=3)
        brute = brute_force_optimize(problem)
        assert pruned_optimize(problem).best.tco.total == pytest.approx(
            brute.best.tco.total
        )
        assert branch_and_bound_optimize(problem).best.tco.total == pytest.approx(
            brute.best.tco.total
        )


class TestSearchInvariants:
    @given(seed=problem_seeds)
    @settings(max_examples=40, deadline=None)
    def test_accounting_adds_up(self, seed):
        problem = random_problem(seed)
        for optimize in (pruned_optimize, branch_and_bound_optimize):
            result = optimize(problem)
            assert result.evaluations + result.pruned == result.space_size
            assert result.evaluations == len(result.options)

    @given(seed=problem_seeds)
    @settings(max_examples=40, deadline=None)
    def test_pruned_only_skips_sla_meeting_supersets(self, seed):
        """Everything pruned must be a superset extension of an evaluated
        SLA-meeting option (and therefore at least as expensive)."""
        problem = random_problem(seed)
        brute = brute_force_optimize(problem)
        pruned = pruned_optimize(problem)
        evaluated_ids = {option.option_id for option in pruned.options}
        met = [option for option in pruned.options if option.meets_sla]
        for option in brute.options:
            if option.option_id in evaluated_ids:
                continue
            assert any(
                option.tco.ha_cost >= subset.tco.ha_cost - 1e-9
                for subset in met
            )

    @given(seed=problem_seeds)
    @settings(max_examples=40, deadline=None)
    def test_best_never_pruned(self, seed):
        problem = random_problem(seed)
        brute = brute_force_optimize(problem)
        for optimize in (pruned_optimize, branch_and_bound_optimize):
            result = optimize(problem)
            # Identical TCO value must be reachable among evaluated options.
            assert min(
                option.tco.total for option in result.options
            ) == pytest.approx(brute.best.tco.total)

    @given(seed=problem_seeds)
    @settings(max_examples=30, deadline=None)
    def test_zero_penalty_contract_recommends_no_ha(self, seed):
        """With no penalty, HA is pure cost: option #1 must win."""
        base = random_problem(seed)
        problem = OptimizationProblem(
            base_system=base.base_system,
            registry=base.registry,
            contract=Contract.linear(99.0, 0.0),
            labor_rate=base.labor_rate,
        )
        result = brute_force_optimize(problem)
        assert result.best.tco.ha_cost == pytest.approx(0.0)


class TestParetoProperties:
    @given(seed=problem_seeds)
    @settings(max_examples=30, deadline=None)
    def test_frontier_contains_no_dominated_member(self, seed):
        result = brute_force_optimize(random_problem(seed))
        frontier = pareto_frontier(result.options)
        for member in frontier:
            assert not any(
                dominates(other, member)
                for other in result.options
                if other is not member
            )

    @given(seed=problem_seeds)
    @settings(max_examples=30, deadline=None)
    def test_every_option_dominated_or_on_frontier(self, seed):
        result = brute_force_optimize(random_problem(seed))
        frontier = set(id(option) for option in pareto_frontier(result.options))
        for option in result.options:
            on_frontier = id(option) in frontier
            dominated_or_tied = any(
                dominates(other, option)
                or (
                    other.tco.ha_cost == option.tco.ha_cost
                    and other.tco.uptime_probability == option.tco.uptime_probability
                    and other is not option
                )
                for other in result.options
            )
            assert on_frontier or dominated_or_tied
