"""Engine edge cases: extreme shapes, instant repairs, saturation."""

from __future__ import annotations

import pytest

from repro.availability.model import evaluate_availability
from repro.simulation.engine import SimulationOptions, simulate
from repro.simulation.monte_carlo import monte_carlo
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.units import MINUTES_PER_YEAR


class TestExtremeClusterShapes:
    def test_maximum_tolerance_cluster(self):
        """K-hat = K-1: the cluster survives anything but total loss."""
        node = NodeSpec("n", 0.2, 20.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=4, standby_tolerance=3, failover_minutes=1.0)
            .build()
        )
        result = monte_carlo(system, replications=30, seed=1)
        analytic = evaluate_availability(system).uptime_probability
        assert result.contains(analytic)

    def test_single_node_cluster(self):
        node = NodeSpec("n", 0.1, 12.0)
        system = TopologyBuilder("s").compute("c", node, nodes=1).build()
        metrics = simulate(
            system, SimulationOptions(horizon_minutes=MINUTES_PER_YEAR, seed=2)
        )
        # Availability of a lone node converges to 1 - P.
        assert metrics.availability == pytest.approx(0.9, abs=0.05)

    def test_very_flaky_nodes_still_conserve_time(self):
        node = NodeSpec("n", 0.45, 200.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=3, standby_tolerance=2, failover_minutes=2.0)
            .storage("st", node, nodes=2, standby_tolerance=1, failover_minutes=1.0)
            .build()
        )
        metrics = simulate(
            system, SimulationOptions(horizon_minutes=200_000.0, seed=3)
        )
        assert 0.0 <= metrics.availability <= 1.0
        assert metrics.downtime_minutes <= metrics.horizon_minutes + 1e-6

    def test_instant_repairs(self):
        """P = 0 with f > 0: failures repaired in zero time."""
        node = NodeSpec("n", 0.0, 50.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=2, standby_tolerance=1, failover_minutes=0.5)
            .build()
        )
        metrics = simulate(
            system, SimulationOptions(horizon_minutes=MINUTES_PER_YEAR, seed=4)
        )
        # Zero-length outages still trigger failover windows.
        assert metrics.breakdown_minutes == pytest.approx(0.0, abs=1e-6)
        assert metrics.failover_events > 0
        assert metrics.failover_minutes > 0.0

    def test_zero_failover_time_ha_cluster(self):
        node = NodeSpec("n", 0.02, 10.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=2, standby_tolerance=1, failover_minutes=0.0)
            .build()
        )
        metrics = simulate(
            system, SimulationOptions(horizon_minutes=MINUTES_PER_YEAR, seed=5)
        )
        # Failovers occur but cost nothing.
        assert metrics.failover_minutes == 0.0

    def test_heterogeneous_chain(self):
        """Mixed shapes across a longer chain stay consistent."""
        solid = NodeSpec("solid", 0.0005, 1.0)
        flaky = NodeSpec("flaky", 0.05, 30.0)
        system = (
            TopologyBuilder("s")
            .compute("a", solid, nodes=5, standby_tolerance=2, failover_minutes=3.0)
            .storage("b", flaky, nodes=1)
            .network("c", solid, nodes=2, standby_tolerance=1, failover_minutes=0.5)
            .other("d", flaky, nodes=4, standby_tolerance=3, failover_minutes=1.0)
            .build()
        )
        result = monte_carlo(system, replications=40, seed=6)
        analytic = evaluate_availability(system).uptime_probability
        assert abs(result.mean_availability - analytic) < 0.02


class TestLongHorizon:
    def test_decade_run_is_stable(self):
        node = NodeSpec("n", 0.01, 6.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=3, standby_tolerance=1, failover_minutes=5.0)
            .build()
        )
        metrics = simulate(
            system,
            SimulationOptions(horizon_minutes=10 * MINUTES_PER_YEAR, seed=7),
        )
        analytic = evaluate_availability(system).uptime_probability
        # One long run self-averages close to the analytic value.
        assert metrics.availability == pytest.approx(analytic, abs=0.002)

    def test_event_counts_scale_with_horizon(self):
        node = NodeSpec("n", 0.01, 6.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=2, standby_tolerance=1, failover_minutes=5.0)
            .build()
        )
        short = simulate(
            system, SimulationOptions(horizon_minutes=MINUTES_PER_YEAR, seed=8)
        )
        long = simulate(
            system,
            SimulationOptions(horizon_minutes=10 * MINUTES_PER_YEAR, seed=8),
        )
        assert long.failover_events > short.failover_events


class TestIntervalLog:
    def test_log_matches_metrics(self):
        node = NodeSpec("n", 0.03, 15.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=2, standby_tolerance=1, failover_minutes=4.0)
            .storage("st", node, nodes=1)
            .build()
        )
        log: list[tuple[float, float, str]] = []
        metrics = simulate(
            system,
            SimulationOptions(horizon_minutes=MINUTES_PER_YEAR, seed=9),
            interval_log=log,
        )
        logged_breakdown = sum(
            end - start for start, end, cause in log if cause == "breakdown"
        )
        logged_failover = sum(
            end - start for start, end, cause in log if cause == "failover"
        )
        assert logged_breakdown == pytest.approx(metrics.breakdown_minutes)
        assert logged_failover == pytest.approx(metrics.failover_minutes)

    def test_log_spans_ordered_and_disjoint(self):
        node = NodeSpec("n", 0.03, 15.0)
        system = (
            TopologyBuilder("s")
            .compute("c", node, nodes=2, standby_tolerance=1, failover_minutes=4.0)
            .build()
        )
        log: list[tuple[float, float, str]] = []
        simulate(
            system,
            SimulationOptions(horizon_minutes=MINUTES_PER_YEAR, seed=10),
            interval_log=log,
        )
        for (s1, e1, _), (s2, e2, _) in zip(log, log[1:]):
            assert e1 <= s2 + 1e-9
            assert s1 < e1
