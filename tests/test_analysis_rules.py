"""repro.analysis: every rule fires on seeded violations and only those.

Each rule gets positive fixtures (a minimal snippet that must produce a
finding) and negative fixtures (the idiomatic repo pattern that must
not).  Fixture files live in tmp trees, so rules with directory scopes
are pointed at them via ``LintConfig.rule_paths``.  The suite ends with
the self-check the CI gate depends on: ``repro lint src`` is clean at
HEAD.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_RULES,
    INTEGRITY_RULE_ID,
    LintConfig,
    REPORT_SCHEMA_VERSION,
    RULE_DESCRIPTIONS,
    run_lint,
)
from repro.analysis.rules import (
    AsyncHygieneRule,
    FloatAccumulationRule,
    ForkSafetyRule,
    LockDisciplineRule,
    RegistryParityRule,
    ResourceLifecycleRule,
    WallClockRule,
    WireRoundTripRule,
)
from repro.cli.main import main
from repro.errors import ValidationError

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
GOLDEN = Path(__file__).parent / "data" / "analysis_golden.json"


def lint_snippet(tmp_path, code, rule_class, name="mod.py"):
    """Lint one snippet with one rule, scope forced onto the tmp tree."""
    path = tmp_path / name
    path.write_text(code)
    config = LintConfig(rule_paths={rule_class.rule_id: ("*",)})
    return run_lint([path], rules=[rule_class], config=config)


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


class TestDriver:
    def test_every_rule_has_id_title_and_description(self):
        for rule_class in DEFAULT_RULES:
            assert rule_class.rule_id.startswith("REP")
            assert rule_class.title
            assert rule_class.rule_id in RULE_DESCRIPTIONS
        assert INTEGRITY_RULE_ID in RULE_DESCRIPTIONS

    def test_rule_ids_unique(self):
        ids = [rule_class.rule_id for rule_class in DEFAULT_RULES]
        assert len(ids) == len(set(ids))

    def test_unknown_rule_selection_rejected(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(ValidationError, match="REP999"):
            run_lint([tmp_path], config=LintConfig(select=("REP999",)))

    def test_unparseable_file_is_an_integrity_finding(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        report = run_lint([tmp_path])
        assert rule_ids(report) == [INTEGRITY_RULE_ID]
        assert "cannot be linted" in report.findings[0].message
        assert report.exit_code == 1

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        report = run_lint([tmp_path])
        assert report.findings == ()
        assert report.exit_code == 0
        assert report.files_checked == 1

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        report = run_lint([tmp_path], rules=[WallClockRule])
        paths = [finding.path for finding in report.findings]
        assert paths == sorted(paths)


class TestSuppressions:
    def test_justified_trailing_suppression_silences(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "t = sum(xs)  # repro: lint-ok[REP001] integer widths, order-free\n",
            FloatAccumulationRule,
        )
        assert report.findings == ()
        assert report.suppressions_used == 1

    def test_own_line_suppression_covers_next_line(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "# repro: lint-ok[REP001] integer widths, order-free\n"
            "t = sum(xs)\n",
            FloatAccumulationRule,
        )
        assert report.findings == ()
        assert report.suppressions_used == 1

    def test_unjustified_suppression_is_finding_and_does_not_silence(
        self, tmp_path
    ):
        report = lint_snippet(
            tmp_path,
            "t = sum(xs)  # repro: lint-ok[REP001]\n",
            FloatAccumulationRule,
        )
        assert sorted(rule_ids(report)) == [INTEGRITY_RULE_ID, "REP001"]
        assert report.suppressions_used == 0

    def test_suppression_for_other_rule_does_not_silence(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "t = sum(xs)  # repro: lint-ok[REP007] wrong rule id entirely\n",
            FloatAccumulationRule,
        )
        assert rule_ids(report) == ["REP001"]

    def test_multi_rule_suppression(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "t = sum(xs)  # repro: lint-ok[REP001, REP007] order-free ints\n",
            FloatAccumulationRule,
        )
        assert report.findings == ()


class TestREP001FloatAccumulation:
    @pytest.mark.parametrize(
        "snippet",
        [
            "total = sum(values)\n",
            "import math\ntotal = math.fsum(values)\n",
            "import numpy as np\ntotal = np.sum(values)\n",
            "import numpy\ntotal = numpy.sum(values)\n",
        ],
    )
    def test_reducers_flagged(self, tmp_path, snippet):
        report = lint_snippet(tmp_path, snippet, FloatAccumulationRule)
        assert rule_ids(report) == ["REP001"]

    def test_values_iteration_accumulation_flagged(self, tmp_path):
        code = (
            "total = 1.0\n"
            "for value in table.values():\n"
            "    total *= value\n"
        )
        report = lint_snippet(tmp_path, code, FloatAccumulationRule)
        assert rule_ids(report) == ["REP001"]

    def test_set_iteration_accumulation_flagged(self, tmp_path):
        code = "t = 0.0\nfor x in set(items):\n    t += x\n"
        report = lint_snippet(tmp_path, code, FloatAccumulationRule)
        assert rule_ids(report) == ["REP001"]

    def test_explicit_ordered_loop_clean(self, tmp_path):
        code = "total = 0.0\nfor term in terms:\n    total += term\n"
        report = lint_snippet(tmp_path, code, FloatAccumulationRule)
        assert report.findings == ()

    def test_values_iteration_without_accumulation_clean(self, tmp_path):
        code = "for value in table.values():\n    print(value)\n"
        report = lint_snippet(tmp_path, code, FloatAccumulationRule)
        assert report.findings == ()

    def test_scope_defaults_to_math_packages(self, tmp_path):
        # Without a path override the rule only covers optimizer/sla/
        # availability, so a CLI-ish file is out of scope.
        (tmp_path / "cli.py").write_text("t = sum(values)\n")
        report = run_lint([tmp_path / "cli.py"], rules=[FloatAccumulationRule])
        assert report.findings == ()


class TestREP002LockDiscipline:
    def test_shutdown_under_fast_lock_flagged(self, tmp_path):
        code = (
            "class Registry:\n"
            "    def close(self):\n"
            "        with self._lock:\n"
            "            self._pool.shutdown(wait=True)\n"
        )
        report = lint_snippet(tmp_path, code, LockDisciplineRule)
        assert rule_ids(report) == ["REP002"]

    def test_teardown_after_lock_released_clean(self, tmp_path):
        code = (
            "class Registry:\n"
            "    def close(self):\n"
            "        with self._lock:\n"
            "            doomed = self._pool\n"
            "        doomed.shutdown(wait=True)\n"
        )
        report = lint_snippet(tmp_path, code, LockDisciplineRule)
        assert report.findings == ()

    def test_slow_path_build_lock_exempt_by_name(self, tmp_path):
        code = (
            "class Registry:\n"
            "    def build(self):\n"
            "        with self._build_lock:\n"
            "            self._old.shutdown(wait=True)\n"
        )
        report = lint_snippet(tmp_path, code, LockDisciplineRule)
        assert report.findings == ()

    def test_nested_def_masks_enclosing_lock(self, tmp_path):
        # The nested function does not *run* under the with.
        code = (
            "class Registry:\n"
            "    def close(self):\n"
            "        with self._lock:\n"
            "            def finisher():\n"
            "                self._pool.shutdown(wait=True)\n"
            "            self._callbacks.append(finisher)\n"
        )
        report = lint_snippet(tmp_path, code, LockDisciplineRule)
        assert report.findings == ()

    def test_condition_wait_exempt(self, tmp_path):
        # cond.wait() releases the lock the Condition wraps.
        code = (
            "class Cache:\n"
            "    def drain(self, entry):\n"
            "        with entry.lock:\n"
            "            while entry.shared:\n"
            "                entry.cond.wait()\n"
        )
        report = lint_snippet(tmp_path, code, LockDisciplineRule)
        assert report.findings == ()

    def test_sleep_under_lock_flagged(self, tmp_path):
        code = (
            "import time\n"
            "class C:\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
        )
        report = lint_snippet(tmp_path, code, LockDisciplineRule)
        assert rule_ids(report) == ["REP002"]


class TestREP003AsyncHygiene:
    def test_sleep_in_async_def_flagged(self, tmp_path):
        code = (
            "import time\n"
            "async def handler(request):\n"
            "    time.sleep(1.0)\n"
        )
        report = lint_snippet(tmp_path, code, AsyncHygieneRule)
        assert rule_ids(report) == ["REP003"]

    @pytest.mark.parametrize(
        "call",
        [
            "subprocess.run(['ls'])",
            "socket.create_connection(('h', 80))",
            "urllib.request.urlopen('http://x')",
            "open('f.txt')",
            "path.read_text()",
        ],
    )
    def test_blocking_io_in_async_def_flagged(self, tmp_path, call):
        code = f"async def handler(request):\n    {call}\n"
        report = lint_snippet(tmp_path, code, AsyncHygieneRule)
        assert rule_ids(report) == ["REP003"]

    def test_run_in_executor_pattern_clean(self, tmp_path):
        code = (
            "async def handler(loop, work):\n"
            "    return await loop.run_in_executor(None, work)\n"
        )
        report = lint_snippet(tmp_path, code, AsyncHygieneRule)
        assert report.findings == ()

    def test_sync_function_not_flagged(self, tmp_path):
        code = "import time\ndef worker():\n    time.sleep(1.0)\n"
        report = lint_snippet(tmp_path, code, AsyncHygieneRule)
        assert report.findings == ()

    def test_scope_defaults_to_server(self, tmp_path):
        (tmp_path / "bench.py").write_text(
            "import time\nasync def probe():\n    time.sleep(1)\n"
        )
        report = run_lint([tmp_path / "bench.py"], rules=[AsyncHygieneRule])
        assert report.findings == ()


class TestREP004ResourceLifecycle:
    def test_creation_without_cleanup_path_flagged(self, tmp_path):
        code = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "class Runner:\n"
            "    def start(self):\n"
            "        self._pool = ProcessPoolExecutor(4)\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert rule_ids(report) == ["REP004"]
        assert "no close/shutdown/unlink/release path" in report.findings[0].message

    def test_creation_with_cleanup_method_clean(self, tmp_path):
        code = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "class Runner:\n"
            "    def start(self):\n"
            "        self._pool = ProcessPoolExecutor(4)\n"
            "    def close(self):\n"
            "        self._pool.shutdown(wait=True)\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert report.findings == ()

    def test_exception_window_between_create_and_register_flagged(
        self, tmp_path
    ):
        code = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def publish(registry, data):\n"
            "    segment = SharedMemory(name='x', create=True, size=10)\n"
            "    registry.register(segment)\n"
            "    return segment\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert rule_ids(report) == ["REP004"]
        assert "leaks the resource" in report.findings[0].message

    def test_try_guarded_window_clean(self, tmp_path):
        code = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def publish(registry, data):\n"
            "    segment = SharedMemory(name='x', create=True, size=10)\n"
            "    try:\n"
            "        registry.register(segment)\n"
            "    except BaseException:\n"
            "        segment.unlink()\n"
            "        raise\n"
            "    return segment\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert report.findings == ()

    def test_enclosing_with_lock_is_not_protection(self, tmp_path):
        # The regression shape of PoolRegistry.acquire: a with-block
        # around the window does not clean up what the body creates.
        code = (
            "import multiprocessing\n"
            "def build(self):\n"
            "    with self._build_lock:\n"
            "        manager = multiprocessing.Manager()\n"
            "        tables = manager.dict()\n"
            "    return tables\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert rule_ids(report) == ["REP004"]

    def test_acquire_without_release_flagged(self, tmp_path):
        code = (
            "class Backend:\n"
            "    def ensure(self, registry):\n"
            "        self._handle = registry.acquire('process', 2)\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert rule_ids(report) == ["REP004"]
        assert "never calls .release()" in report.findings[0].message

    def test_acquire_release_pair_clean(self, tmp_path):
        code = (
            "class Backend:\n"
            "    def ensure(self, registry):\n"
            "        self._handle = registry.acquire('process', 2)\n"
            "    def close(self):\n"
            "        self._handle.release()\n"
        )
        report = lint_snippet(tmp_path, code, ResourceLifecycleRule)
        assert report.findings == ()


class TestREP005WireRoundTrip:
    def test_to_dict_without_from_dict_flagged(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Event:\n"
            "    kind: str\n"
            "    def to_dict(self):\n"
            "        return {'kind': self.kind}\n"
        )
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        assert rule_ids(report) == ["REP005"]
        assert "no from_dict" in report.findings[0].message

    def test_field_missing_from_serialization_flagged(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Env:\n"
            "    kind: str\n"
            "    detail: str\n"
            "    def to_dict(self):\n"
            "        return {'kind': self.kind}\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(kind=payload['kind'], detail='')\n"
        )
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        assert any(
            "missing from the to_dict key set" in finding.message
            for finding in report.findings
        )

    def test_serialized_key_never_parsed_flagged(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Env:\n"
            "    kind: str\n"
            "    def to_dict(self):\n"
            "        return {'kind': self.kind, 'extra': 1}\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(kind=payload['kind'])\n"
        )
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        assert rule_ids(report) == ["REP005"]
        assert "'extra'" in report.findings[0].message

    def test_symmetric_envelope_clean(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Env:\n"
            "    kind: str\n"
            "    request_id: str\n"
            "    def to_dict(self):\n"
            "        return {'schema_version': 2, 'kind': self.kind,\n"
            "                'request_id': self.request_id}\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(kind=payload['kind'],\n"
            "                   request_id=payload.get('request_id'))\n"
        )
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        assert report.findings == ()

    def test_optional_wire_field_round_trips_clean(self, tmp_path):
        """The idempotency_key shape: an optional (default-None) field
        is held to the same symmetry bar as required ones."""
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Env:\n"
            "    kind: str\n"
            "    idempotency_key: 'str | None' = None\n"
            "    def to_dict(self):\n"
            "        return {'kind': self.kind,\n"
            "                'idempotency_key': self.idempotency_key}\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(kind=payload['kind'],\n"
            "                   idempotency_key=payload.get('idempotency_key'))\n"
        )
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        assert report.findings == ()

    def test_optional_field_serialized_but_never_parsed_flagged(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Env:\n"
            "    kind: str\n"
            "    idempotency_key: 'str | None' = None\n"
            "    def to_dict(self):\n"
            "        return {'kind': self.kind,\n"
            "                'idempotency_key': self.idempotency_key}\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(kind=payload['kind'])\n"
        )
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        # Flagged from both directions: the field is never parsed back,
        # and the serialized key is never read.
        assert set(rule_ids(report)) == {"REP005"}
        assert any(
            "never read back" in finding.message
            for finding in report.findings
        )

    def test_plain_class_without_to_dict_ignored(self, tmp_path):
        code = "class Helper:\n    def run(self):\n        return 1\n"
        report = lint_snippet(tmp_path, code, WireRoundTripRule)
        assert report.findings == ()


class TestREP006RegistryParity:
    def test_backend_registry_mismatch_flagged(self, tmp_path):
        code = (
            "ENGINE_BACKENDS = ('serial', 'turbo')\n"
            "class SerialBackend:\n"
            "    name = 'serial'\n"
            "    def evaluate_stream(self, engine, items):\n"
            "        pass\n"
            "    def close(self):\n"
            "        pass\n"
            "_BACKEND_TYPES = {'serial': SerialBackend}\n"
        )
        report = lint_snippet(tmp_path, code, RegistryParityRule)
        assert rule_ids(report) == ["REP006"]
        assert "turbo" in report.findings[0].message

    def test_backend_missing_surface_flagged(self, tmp_path):
        code = (
            "ENGINE_BACKENDS = ('serial',)\n"
            "class SerialBackend:\n"
            "    name = 'serial'\n"
            "_BACKEND_TYPES = {'serial': SerialBackend}\n"
        )
        report = lint_snippet(tmp_path, code, RegistryParityRule)
        assert rule_ids(report) == ["REP006"]
        assert "evaluate_stream" in report.findings[0].message

    def test_surface_inherited_from_in_module_base_clean(self, tmp_path):
        code = (
            "ENGINE_BACKENDS = ('thread',)\n"
            "class _PooledBackend:\n"
            "    def evaluate_stream(self, engine, items):\n"
            "        pass\n"
            "    def close(self):\n"
            "        pass\n"
            "class ThreadBackend(_PooledBackend):\n"
            "    name = 'thread'\n"
            "_BACKEND_TYPES = {'thread': ThreadBackend}\n"
        )
        report = lint_snippet(tmp_path, code, RegistryParityRule)
        assert report.findings == ()

    def test_concrete_clause_without_vector_override_flagged(self, tmp_path):
        code = (
            "class PenaltyClause:\n"
            "    def monthly_penalty(self, downtime):\n"
            "        raise NotImplementedError\n"
            "    def monthly_penalty_vector(self, values):\n"
            "        return [self.monthly_penalty(v) for v in values]\n"
            "class SquarePenalty(PenaltyClause):\n"
            "    def monthly_penalty(self, downtime):\n"
            "        return downtime * downtime\n"
        )
        report = lint_snippet(tmp_path, code, RegistryParityRule)
        assert rule_ids(report) == ["REP006"]
        assert "SquarePenalty" in report.findings[0].message

    def test_scalar_fallback_marker_accepted(self, tmp_path):
        code = (
            "class PenaltyClause:\n"
            "    def monthly_penalty(self, downtime):\n"
            "        raise NotImplementedError\n"
            "class RarePenalty(PenaltyClause):\n"
            "    # repro: scalar-fallback cold path, not worth vectorizing\n"
            "    def monthly_penalty(self, downtime):\n"
            "        return 0.0\n"
        )
        report = lint_snippet(tmp_path, code, RegistryParityRule)
        assert report.findings == ()

    def test_abstract_intermediate_clause_skipped(self, tmp_path):
        code = (
            "import abc\n"
            "class PenaltyClause:\n"
            "    def monthly_penalty(self, downtime):\n"
            "        raise NotImplementedError\n"
            "class ShapedPenalty(PenaltyClause):\n"
            "    @abc.abstractmethod\n"
            "    def shape(self):\n"
            "        ...\n"
        )
        report = lint_snippet(tmp_path, code, RegistryParityRule)
        assert report.findings == ()

    def test_real_engine_and_penalty_modules_clean(self):
        report = run_lint(
            [SRC / "repro" / "optimizer" / "engine.py",
             SRC / "repro" / "sla" / "penalty.py"],
            rules=[RegistryParityRule],
        )
        assert report.findings == ()


class TestREP007WallClock:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.time_ns()\n",
            "from datetime import datetime\nt = datetime.now()\n",
            "import random\nx = random.random()\n",
            "import random\nx = random.randint(1, 6)\n",
            "import random\nrandom.seed(7)\n",
            "import time\nt = time.monotonic()\n",
            "import time\nt = time.perf_counter()\n",
            "import time\nt = time.monotonic_ns()\n",
        ],
    )
    def test_wall_clock_and_global_rng_flagged(self, tmp_path, snippet):
        report = lint_snippet(tmp_path, snippet, WallClockRule)
        assert rule_ids(report) == ["REP007"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "from repro.obs import clock\nt = clock.monotonic()\n",
            "from repro.obs import clock\nt = clock.perf_counter()\n",
            "import random\nrng = random.Random(7)\nx = rng.random()\n",
        ],
    )
    def test_sanctioned_clock_and_seeded_rng_clean(self, tmp_path, snippet):
        report = lint_snippet(tmp_path, snippet, WallClockRule)
        assert report.findings == ()

    def test_obs_clock_module_itself_exempt(self, tmp_path):
        # Lint the tree, not the bare file: the exemption keys on the
        # package-relative "obs/clock.py" scope path.
        obs = tmp_path / "obs"
        obs.mkdir()
        (obs / "clock.py").write_text(
            "import time\nt = time.monotonic()\nw = time.time()\n"
        )
        report = run_lint([tmp_path], rules=[WallClockRule])
        assert report.findings == ()

    def test_other_clock_named_modules_not_exempt(self, tmp_path):
        (tmp_path / "clock.py").write_text(
            "import time\nt = time.monotonic()\n"
        )
        report = run_lint([tmp_path], rules=[WallClockRule])
        assert rule_ids(report) == ["REP007"]

    def test_rng_module_itself_exempt(self, tmp_path):
        (tmp_path / "rng.py").write_text("import time\nt = time.time()\n")
        report = run_lint([tmp_path / "rng.py"], rules=[WallClockRule])
        assert report.findings == ()


class TestREP008ForkSafety:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import os\npid = os.fork()\n",
            "import os\npid, fd = os.forkpty()\n",
            "import multiprocessing\np = multiprocessing.Process(target=f)\n",
            "import multiprocessing as mp\np = mp.Process(target=f)\n",
            "from multiprocessing import Process\np = Process(target=f)\n",
            "import multiprocessing\nctx = multiprocessing.get_context()\n",
            'import multiprocessing\n'
            'ctx = multiprocessing.get_context("fork")\n',
            'import multiprocessing\n'
            'ctx = multiprocessing.get_context("forkserver")\n',
            'import multiprocessing\n'
            'multiprocessing.set_start_method("fork")\n',
            "import multiprocessing\nmultiprocessing.set_start_method()\n",
        ],
    )
    def test_fork_idioms_flagged(self, tmp_path, snippet):
        report = lint_snippet(tmp_path, snippet, ForkSafetyRule)
        assert rule_ids(report) == ["REP008"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned idiom: an explicit spawn context.
            'import multiprocessing\n'
            'ctx = multiprocessing.get_context("spawn")\n'
            "p = ctx.Process(target=f)\n",
            'import multiprocessing\n'
            'multiprocessing.set_start_method("spawn")\n',
            # Dynamic method names are beyond static reach: no finding.
            "import multiprocessing\n"
            "ctx = multiprocessing.get_context(pick())\n",
            # Thread pools and threads are fine; only forking is not.
            "import threading\nt = threading.Thread(target=f)\n",
        ],
    )
    def test_spawn_idioms_clean(self, tmp_path, snippet):
        report = lint_snippet(tmp_path, snippet, ForkSafetyRule)
        assert report.findings == ()

    def test_scoped_to_server_modules_only(self, tmp_path):
        code = "import os\npid = os.fork()\n"
        server = tmp_path / "server"
        server.mkdir()
        (server / "forky.py").write_text(code)
        (tmp_path / "elsewhere.py").write_text(code)
        report = run_lint([tmp_path], rules=[ForkSafetyRule])
        assert rule_ids(report) == ["REP008"]
        assert report.findings[0].path.endswith("forky.py")


class TestJsonReport:
    def fixture_tree(self, tmp_path):
        tree = tmp_path / "fixture"
        tree.mkdir()
        (tree / "clocks.py").write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        (tree / "sums.py").write_text(
            "def total(values):\n"
            "    return sum(values)  # repro: lint-ok[REP001]\n"
        )
        server = tree / "server"
        server.mkdir()
        (server / "spawner.py").write_text(
            "import multiprocessing\n"
            "def shard():\n"
            "    return multiprocessing.Process(target=shard)\n"
        )
        return tree

    def normalized_report(self, tmp_path):
        tree = self.fixture_tree(tmp_path)
        config = LintConfig(rule_paths={"REP001": ("*",)})
        report = run_lint(
            [tree],
            rules=[FloatAccumulationRule, WallClockRule, ForkSafetyRule],
            config=config,
        )
        payload = json.loads(report.to_json())
        for finding in payload["findings"]:
            finding["path"] = finding["path"].replace(
                tree.as_posix(), "<fixture>"
            )
        return payload

    def test_json_schema_and_content(self, tmp_path):
        payload = self.normalized_report(tmp_path)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["files_checked"] == 3
        assert payload["finding_count"] == len(payload["findings"]) == 4
        assert {f["rule"] for f in payload["findings"]} == {
            "REP000", "REP001", "REP007", "REP008",
        }
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "col", "message", "hint",
            }

    def test_matches_golden_file(self, tmp_path):
        payload = self.normalized_report(tmp_path)
        golden = json.loads(GOLDEN.read_text())
        assert payload == golden


class TestCliLint:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_findings_exit_nonzero_text(self, tmp_path, capsys):
        (tmp_path / "clock.py").write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP007" in out
        assert "hint:" in out

    def test_lint_json_format(self, tmp_path, capsys):
        (tmp_path / "clock.py").write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["finding_count"] == 1
        assert payload["findings"][0]["rule"] == "REP007"

    def test_lint_rule_selection(self, tmp_path, capsys):
        (tmp_path / "clock.py").write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path), "--rules", "REP002"]) == 0
        assert main(["lint", str(tmp_path), "--rules", "REP007"]) == 1
        capsys.readouterr()

    def test_lint_unknown_rule_is_cli_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--rules", "REP999"]) == 1
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_class in DEFAULT_RULES:
            assert rule_class.rule_id in out
        assert INTEGRITY_RULE_ID in out


class TestSelfCheck:
    def test_src_is_clean_at_head(self):
        """The CI gate: the shipped tree satisfies its own invariants."""
        report = run_lint([SRC])
        assert report.findings == (), report.to_text()
        assert report.exit_code == 0
        assert report.files_checked >= 90

    def test_suppressions_in_src_are_all_justified_and_used(self):
        report = run_lint([SRC])
        assert report.suppressions_used >= 5
