"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.catalog.registry import case_study_registry
from repro.cost.rates import LaborRate
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology
from repro.workloads.case_study import case_study_problem


@pytest.fixture
def reliable_node() -> NodeSpec:
    """A node that is down 0.1% of the time, failing twice a year."""
    return NodeSpec(
        kind="reliable", down_probability=0.001, failures_per_year=2.0,
        monthly_cost=100.0,
    )


@pytest.fixture
def flaky_node() -> NodeSpec:
    """A node that is down 2% of the time, failing monthly."""
    return NodeSpec(
        kind="flaky", down_probability=0.02, failures_per_year=12.0,
        monthly_cost=40.0,
    )


@pytest.fixture
def bare_cluster(reliable_node: NodeSpec) -> ClusterSpec:
    """A 3-node compute cluster with no HA."""
    return ClusterSpec(
        name="compute", layer=Layer.COMPUTE, node=reliable_node, total_nodes=3
    )


@pytest.fixture
def ha_cluster(reliable_node: NodeSpec) -> ClusterSpec:
    """A 3+1 compute cluster with a 10-minute failover."""
    return ClusterSpec(
        name="compute",
        layer=Layer.COMPUTE,
        node=reliable_node,
        total_nodes=4,
        standby_tolerance=1,
        failover_minutes=10.0,
        ha_technology="hypervisor-n+1",
        monthly_ha_infra_cost=150.0,
        monthly_ha_labor_hours=4.0,
    )


@pytest.fixture
def three_tier(reliable_node: NodeSpec, flaky_node: NodeSpec) -> SystemTopology:
    """A bare three-tier system mixing reliable and flaky nodes."""
    gateway = NodeSpec(
        kind="gateway", down_probability=0.005, failures_per_year=4.0,
        monthly_cost=120.0,
    )
    return (
        TopologyBuilder("three-tier")
        .compute("compute", reliable_node, nodes=3)
        .storage("storage", flaky_node, nodes=1)
        .network("network", gateway, nodes=1)
        .build()
    )


@pytest.fixture
def simple_problem(three_tier: SystemTopology) -> OptimizationProblem:
    """A small k=2, n=3 optimization problem with non-zero HA costs."""
    return OptimizationProblem(
        base_system=three_tier,
        registry=case_study_registry(
            hypervisor_license_per_node=10.0,
            hypervisor_labor_hours=4.0,
            raid_controller_cost=20.0,
            raid_labor_hours=2.0,
            gateway_vip_cost=15.0,
            gateway_labor_hours=1.0,
        ),
        contract=Contract.linear(99.0, 200.0),
        labor_rate=LaborRate(30.0),
    )


@pytest.fixture
def paper_problem() -> OptimizationProblem:
    """The calibrated §III case-study problem."""
    return case_study_problem()
