"""Property tests: the EvaluationEngine is exactly the direct evaluation.

The engine's contract is strong: for *every* candidate of *any* problem,
the incremental recombination of cached per-cluster terms must equal the
full-topology evaluation to within 1e-12 (in practice: bit-identical),
for all three strategies, with the result cache on or off, and with
parallel chunked evaluation.  These tests sweep randomized registries
and topologies plus the calibrated case study.
"""

from __future__ import annotations

import pytest

from repro.errors import OptimizerError
from repro.optimizer.advisor import advise_upgrades
from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.brute_force import (
    brute_force_optimize,
    evaluate_candidate,
    iter_brute_force,
)
from repro.optimizer.engine import EvaluationEngine, engine_for
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.result import OptimizationResult
from repro.workloads.case_study import case_study_problem
from repro.workloads.generators import random_problem

TOL = 1e-12

#: (seed, clusters, choices_per_layer) grid for the randomized sweeps.
RANDOM_GRID = [
    (seed, clusters, choices)
    for seed in range(5)
    for clusters, choices in ((3, 2), (4, 2), (4, 3))
]


def _problems():
    yield case_study_problem()
    for seed, clusters, choices in RANDOM_GRID:
        yield random_problem(seed, clusters=clusters, choices_per_layer=choices)


def _assert_equivalent(direct, incremental):
    assert incremental.option_id == direct.option_id
    assert incremental.choice_names == direct.choice_names
    assert incremental.meets_sla == direct.meets_sla
    assert abs(
        incremental.availability.breakdown_probability
        - direct.availability.breakdown_probability
    ) <= TOL
    assert abs(
        incremental.availability.failover_probability
        - direct.availability.failover_probability
    ) <= TOL
    assert abs(
        incremental.availability.uptime_probability
        - direct.availability.uptime_probability
    ) <= TOL
    for mine, reference in zip(
        incremental.availability.clusters, direct.availability.clusters
    ):
        assert mine.name == reference.name
        assert abs(mine.up_probability - reference.up_probability) <= TOL
        assert abs(
            mine.failover_contribution - reference.failover_contribution
        ) <= TOL
    for field in (
        "ha_infra_cost",
        "ha_labor_cost",
        "expected_penalty",
        "base_infra_cost",
        "uptime_probability",
        "slippage_hours",
    ):
        assert abs(
            getattr(incremental.tco, field) - getattr(direct.tco, field)
        ) <= TOL, field
    assert abs(incremental.tco.total - direct.tco.total) <= TOL
    assert incremental.system == direct.system


class TestEngineMatchesDirectEvaluation:
    def test_every_candidate_equivalent(self):
        for problem in _problems():
            engine = EvaluationEngine(problem)
            space = engine.space
            for option_id, indices in enumerate(
                space.candidates_in_paper_order(), start=1
            ):
                direct = evaluate_candidate(problem, space, option_id, indices)
                _assert_equivalent(direct, engine.evaluate(option_id, indices))

    def test_direct_mode_equivalent(self):
        problem = random_problem(99, clusters=3, choices_per_layer=2)
        incremental = EvaluationEngine(problem)
        direct = EvaluationEngine(problem, mode="direct")
        for option_id, indices in enumerate(
            incremental.space.candidates_in_paper_order(), start=1
        ):
            _assert_equivalent(
                direct.evaluate(option_id, indices),
                incremental.evaluate(option_id, indices),
            )
        assert direct.stats.topology_evaluations > 0
        assert incremental.stats.topology_evaluations == 0

    def test_parallel_equivalent(self):
        for problem in (
            case_study_problem(),
            random_problem(7, clusters=4, choices_per_layer=3),
        ):
            sequential = brute_force_optimize(problem)
            parallel = brute_force_optimize(
                problem,
                engine=EvaluationEngine(problem, parallel=True, chunk_size=16),
            )
            assert len(parallel.options) == len(sequential.options)
            for direct, option in zip(sequential.options, parallel.options):
                _assert_equivalent(direct, option)

    def test_uncached_engine_equivalent(self):
        problem = random_problem(3, clusters=3, choices_per_layer=2)
        engine = EvaluationEngine(problem, cache=False)
        result = brute_force_optimize(problem, engine=engine)
        assert engine.stats.cache_hits == 0
        reference = brute_force_optimize(problem)
        assert result.best.tco.total == reference.best.tco.total


class TestStrategiesThroughEngine:
    @pytest.mark.parametrize(
        "strategy", [pruned_optimize, branch_and_bound_optimize]
    )
    def test_strategies_agree_with_brute_force(self, strategy):
        for problem in _problems():
            engine = EvaluationEngine(problem)
            brute = brute_force_optimize(problem, engine=engine)
            result = strategy(problem, engine=engine)
            assert abs(result.best.tco.total - brute.best.tco.total) <= TOL
            assert result.best.choice_names == brute.best.choice_names

    def test_parallel_strategies_on_random_problems(self):
        for seed in range(3):
            problem = random_problem(seed, clusters=4, choices_per_layer=2)
            engine = EvaluationEngine(problem, parallel=True, chunk_size=8)
            brute = brute_force_optimize(problem, engine=engine)
            pruned = pruned_optimize(problem, engine=engine)
            bnb = branch_and_bound_optimize(problem, engine=engine)
            assert abs(pruned.best.tco.total - brute.best.tco.total) <= TOL
            assert abs(bnb.best.tco.total - brute.best.tco.total) <= TOL

    def test_case_study_best_is_bit_identical(self, paper_problem):
        reference = evaluate_candidate(
            paper_problem, paper_problem.space(), 3, (0, 1, 0)
        )
        for strategy in (
            brute_force_optimize,
            pruned_optimize,
            branch_and_bound_optimize,
        ):
            best = strategy(paper_problem).best
            assert best.option_id == 3
            assert best.tco.total == reference.tco.total
            assert best.availability.uptime_probability == (
                reference.availability.uptime_probability
            )


class TestEngineCache:
    def test_searches_share_evaluations(self):
        problem = case_study_problem()
        engine = EvaluationEngine(problem)
        brute_force_optimize(problem, engine=engine)
        assert engine.stats.incremental_combines == 8
        pruned_optimize(problem, engine=engine)
        branch_and_bound_optimize(problem, engine=engine)
        # Everything after the exhaustive sweep is a cache hit.
        assert engine.stats.incremental_combines == 8
        assert engine.stats.cache_hits > 0

    def test_advisor_sweeps_reuse_cache(self):
        problem = case_study_problem()
        engine = EvaluationEngine(problem)
        current = ("hypervisor-n+1", "raid-1", "dual-gateway")
        advise_upgrades(problem, current, engine=engine)
        combines_after_first = engine.stats.incremental_combines
        for migration_cost in (100.0, 1000.0, 10_000.0):
            advise_upgrades(
                problem, current, migration_cost=migration_cost, engine=engine
            )
        assert engine.stats.incremental_combines == combines_after_first

    def test_cache_relabels_option_ids(self):
        problem = case_study_problem()
        engine = EvaluationEngine(problem)
        first = engine.evaluate(42, (0, 1, 0))
        relabelled = engine.evaluate(3, (0, 1, 0))
        assert engine.stats.cache_hits == 1
        assert relabelled.option_id == 3
        assert relabelled.tco == first.tco

    def test_engine_rejects_foreign_problem(self):
        with pytest.raises(OptimizerError, match="different problem"):
            engine_for(
                case_study_problem(), EvaluationEngine(random_problem(1))
            )

    def test_engine_rejects_unknown_mode(self):
        with pytest.raises(OptimizerError, match="mode"):
            EvaluationEngine(case_study_problem(), mode="quantum")


class TestStreamingResult:
    def test_streamed_result_matches_materialized(self):
        for problem in (
            case_study_problem(),
            random_problem(5, clusters=4, choices_per_layer=3),
        ):
            full = brute_force_optimize(problem)
            distilled = brute_force_optimize(problem, keep_options=False)
            assert distilled.evaluations == full.evaluations
            assert len(distilled.options) <= 2
            assert distilled.best.tco.total == full.best.tco.total
            assert distilled.best.option_id == full.best.option_id
            assert (
                distilled.min_penalty_option.option_id
                == full.min_penalty_option.option_id
            )

    def test_from_stream_counts_without_materializing(self):
        problem = case_study_problem()
        engine = EvaluationEngine(problem)
        result = OptimizationResult.from_stream(
            iter_brute_force(problem, engine),
            space_size=engine.space.size,
            strategy="brute-force",
            keep_options=False,
        )
        assert result.evaluations == 8
        assert result.space_size == 8
        assert result.best.option_id == 3

    def test_distilled_sweep_disables_result_cache(self):
        # keep_options=False advertises O(1) memory; the default engine
        # must not quietly retain every option in its result cache.
        problem = random_problem(8, clusters=4, choices_per_layer=3)
        distilled = brute_force_optimize(problem, keep_options=False)
        assert distilled.evaluations == 192
        # A shared engine passed explicitly keeps caching (caller's call).
        engine = EvaluationEngine(problem)
        brute_force_optimize(problem, engine=engine, keep_options=False)
        assert engine.stats.incremental_combines == 192
        followup = pruned_optimize(problem, engine=engine)
        assert engine.stats.cache_hits >= followup.evaluations

    def test_from_stream_rejects_empty(self):
        with pytest.raises(OptimizerError, match="no evaluated options"):
            OptimizationResult.from_stream(
                iter(()), space_size=8, strategy="brute-force"
            )

    def test_iter_options_streams_paper_order(self, simple_problem):
        result = brute_force_optimize(simple_problem)
        assert [option.option_id for option in result.iter_options()] == list(
            range(1, 9)
        )
