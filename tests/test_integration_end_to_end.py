"""Integration: the full broker pipeline, cloud to recommendation.

These tests exercise long paths across subsystems: deploy on a simulated
cloud, inject faults, learn telemetry, recommend, validate the
recommendation with the Monte Carlo simulator.
"""

from __future__ import annotations

import pytest

from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.deployment import deploy_system
from repro.cloud.providers import all_providers, metalcloud
from repro.optimizer.brute_force import brute_force_optimize
from repro.simulation.validation import validate_against_model
from repro.sla.contract import Contract
from repro.workloads.case_study import case_study_problem


class TestBrokerPipeline:
    def test_full_pipeline_reproduces_case_study(self):
        """Telemetry-driven recommendation on the SoftLayer-like provider
        lands on the same option as the calibrated ground-truth problem."""
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=8.0, seed=23)
        report = broker.recommend(
            three_tier_request(Contract.linear(98.0, 100.0))
        )
        brokered_best = report.for_provider("metalcloud").result.best
        ground_truth_best = brute_force_optimize(case_study_problem()).best
        assert brokered_best.choice_names == ground_truth_best.choice_names

    def test_recommended_system_passes_simulation(self):
        """The recommended architecture's analytic uptime is confirmed by
        the discrete-event simulator."""
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=8.0, seed=29)
        report = broker.recommend(
            three_tier_request(Contract.linear(98.0, 100.0))
        )
        system = report.for_provider("metalcloud").result.best.system
        validation = validate_against_model(system, replications=40, seed=31)
        assert validation.absolute_error < 0.01, validation.describe()

    def test_recommended_system_is_deployable(self):
        """The HA-enabled recommendation can actually be provisioned on
        the provider that recommended it."""
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=8.0, seed=37)
        report = broker.recommend(
            three_tier_request(Contract.linear(98.0, 100.0))
        )
        best = report.for_provider("metalcloud").result.best
        provider = broker.provider("metalcloud")
        deployment = deploy_system(best.system, provider)
        # RAID-1 storage means 2 volumes; base compute stays at 3 VMs.
        assert len(deployment.cluster_resources("storage")) == 2
        assert len(deployment.cluster_resources("compute")) == 3
        assert deployment.monthly_infra_cost > 0.0
        deployment.teardown()
        assert provider.monthly_spend() == 0.0

    def test_stricter_sla_buys_more_ha(self):
        """Tightening the SLA monotonically grows the recommended HA
        footprint across the marketplace winner."""
        broker = BrokerService(all_providers())
        broker.observe_all(years=5.0, seed=41)
        footprints = []
        for sla in (95.0, 98.0, 99.9):
            report = broker.recommend(
                three_tier_request(Contract.linear(sla, 400.0))
            )
            best = report.for_provider("metalcloud").result.best
            footprints.append(len(best.clustered_components))
        assert footprints == sorted(footprints)

    def test_higher_penalty_never_lowers_uptime(self):
        """Raising the penalty rate can only push the recommendation to
        equal or higher availability."""
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=6.0, seed=43)
        uptimes = []
        for rate in (10.0, 100.0, 1000.0, 10_000.0):
            report = broker.recommend(
                three_tier_request(Contract.linear(98.0, rate))
            )
            best = report.for_provider("metalcloud").result.best
            uptimes.append(best.tco.uptime_probability)
        assert uptimes == sorted(uptimes)


class TestTelemetryConvergence:
    def test_longer_observation_tightens_estimates(self):
        """E5 at test scale: mean estimate error shrinks with horizon.

        Averaged over seeds because a single short observation can get
        lucky (the paper's "skews smooth out over the long term").
        """
        provider_truth = metalcloud().reliability.triple("volume")[0]
        seeds = (47, 48, 49, 50)

        def mean_error(years: float) -> float:
            errors = []
            for seed in seeds:
                broker = BrokerService((metalcloud(),))
                broker.observe_provider("metalcloud", years=years, seed=seed)
                estimate = broker.knowledge_base.estimate("metalcloud", "volume")
                errors.append(abs(estimate.down_probability - provider_truth))
            return sum(errors) / len(errors)

        assert mean_error(30.0) < mean_error(1.0)

    def test_estimates_distinguish_providers(self):
        broker = BrokerService(all_providers())
        broker.observe_all(years=10.0, seed=53)
        kb = broker.knowledge_base
        assert (
            kb.estimate("stratus", "vm").down_probability
            < kb.estimate("metalcloud", "vm").down_probability
            < kb.estimate("cumulus", "vm").down_probability
        )
