"""Correlated (zone-level) failures: specs, merging, and the ablation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.model import evaluate_availability
from repro.errors import SimulationError, ValidationError
from repro.simulation.correlated import (
    ZoneOutageSpec,
    correlated_monte_carlo,
    merge_downtime,
    simulate_with_zones,
    zone_aware_uptime,
)
from repro.workloads.case_study import case_study_base_system


class TestZoneOutageSpec:
    def test_unavailability_formula(self):
        # 1 event/year lasting the whole year minus nothing: tiny example —
        # 2 events/yr x 131.4 min gives 262.8/525600 = 5e-4.
        spec = ZoneOutageSpec(events_per_year=2.0, mean_outage_minutes=131.4)
        assert spec.unavailability == pytest.approx(262.8 / 525_600.0)

    def test_zero_events_is_perfect(self):
        assert ZoneOutageSpec(0.0, 100.0).unavailability == 0.0
        assert ZoneOutageSpec(5.0, 0.0).unavailability == 0.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValidationError):
            ZoneOutageSpec(-1.0, 10.0)
        with pytest.raises(ValidationError):
            ZoneOutageSpec(1.0, -10.0)

    def test_impossible_spec_raises(self):
        # More outage time than the year holds.
        spec = ZoneOutageSpec(events_per_year=10.0, mean_outage_minutes=60_000.0)
        with pytest.raises(SimulationError):
            spec.unavailability

    def test_sampling_deterministic(self):
        import random

        spec = ZoneOutageSpec(4.0, 120.0)
        a = spec.sample_intervals(525_600.0, random.Random(1))
        b = spec.sample_intervals(525_600.0, random.Random(1))
        assert a == b

    def test_intervals_clipped_to_horizon(self):
        import random

        spec = ZoneOutageSpec(50.0, 500.0)
        for start, end in spec.sample_intervals(100_000.0, random.Random(2)):
            assert 0.0 <= start < end <= 100_000.0


class TestMergeDowntime:
    def test_empty(self):
        assert merge_downtime([], 100.0) == 0.0

    def test_disjoint(self):
        assert merge_downtime([(0, 10), (20, 30)], 100.0) == 20.0

    def test_overlapping(self):
        assert merge_downtime([(0, 10), (5, 20)], 100.0) == 20.0

    def test_nested(self):
        assert merge_downtime([(0, 30), (5, 10)], 100.0) == 30.0

    def test_clipped_to_horizon(self):
        assert merge_downtime([(90, 200)], 100.0) == 10.0

    def test_unsorted_input(self):
        assert merge_downtime([(20, 30), (0, 10), (8, 22)], 100.0) == 30.0

    @given(
        spans=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000),
                st.floats(min_value=0, max_value=1000),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_union_bounds(self, spans):
        normalized = [(min(a, b), max(a, b)) for a, b in spans]
        total = merge_downtime(normalized, 1000.0)
        raw_sum = sum(end - start for start, end in normalized)
        assert 0.0 <= total <= min(raw_sum + 1e-9, 1000.0)


class TestSimulateWithZones:
    def test_no_zones_matches_base(self):
        system = case_study_base_system()
        result = simulate_with_zones(system, {}, seed=1)
        assert result.zone_downtime_minutes == 0.0
        assert result.total_downtime_minutes == pytest.approx(
            result.base_metrics.downtime_minutes
        )

    def test_zones_only_add_downtime(self):
        system = case_study_base_system()
        zones = {"network": ZoneOutageSpec(4.0, 240.0)}
        result = simulate_with_zones(system, zones, seed=2)
        assert result.total_downtime_minutes >= (
            result.base_metrics.downtime_minutes
        )
        assert result.correlation_penalty >= 0.0

    def test_unknown_cluster_rejected(self):
        system = case_study_base_system()
        with pytest.raises(SimulationError, match="unknown clusters"):
            simulate_with_zones(system, {"mars": ZoneOutageSpec(1.0, 10.0)}, seed=3)

    def test_zone_aware_analytic_matches_simulation(self):
        """The zone-aware analytic uptime lands near the merged
        simulation (the ablation's headline check)."""
        system = case_study_base_system()
        zones = {
            "compute": ZoneOutageSpec(2.0, 240.0),
            "network": ZoneOutageSpec(3.0, 120.0),
        }
        runs = correlated_monte_carlo(system, zones, replications=40, seed=4)
        simulated = sum(run.availability for run in runs) / len(runs)
        analytic = zone_aware_uptime(system, zones)
        assert simulated == pytest.approx(analytic, abs=0.005)

    def test_naive_model_overestimates_under_correlation(self):
        """Eq. 2 without zone awareness is optimistic — the threat the
        ablation quantifies."""
        system = case_study_base_system()
        zones = {"compute": ZoneOutageSpec(6.0, 480.0)}
        naive = evaluate_availability(system).uptime_probability
        runs = correlated_monte_carlo(system, zones, replications=30, seed=5)
        simulated = sum(run.availability for run in runs) / len(runs)
        assert naive > simulated

    def test_monte_carlo_rejects_zero_replications(self):
        with pytest.raises(SimulationError):
            correlated_monte_carlo(case_study_base_system(), {}, replications=0)
