"""Sensitivity analysis of U_s to the broker-supplied inputs (§IV)."""

from __future__ import annotations

import pytest

from repro.availability.sensitivity import sensitivity_analysis
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec


@pytest.fixture
def system():
    host = NodeSpec("host", 0.01, 6.0)
    disk = NodeSpec("disk", 0.03, 5.0)
    return (
        TopologyBuilder("s")
        .compute("c", host, nodes=4, standby_tolerance=1, failover_minutes=10.0)
        .storage("st", disk, nodes=1)
        .build()
    )


class TestSensitivity:
    def test_report_covers_all_clusters(self, system):
        report = sensitivity_analysis(system)
        assert [entry.name for entry in report.clusters] == ["c", "st"]

    def test_baseline_matches_model(self, system):
        from repro.availability.model import evaluate_availability

        report = sensitivity_analysis(system)
        assert report.baseline_uptime == pytest.approx(
            evaluate_availability(system).uptime_probability
        )

    def test_higher_down_probability_lowers_uptime(self, system):
        report = sensitivity_analysis(system)
        for entry in report.clusters:
            assert entry.wrt_down_probability < 0.0

    def test_failover_sensitivity_negative_for_ha_cluster(self, system):
        report = sensitivity_analysis(system)
        assert report.for_cluster("c").wrt_failover_minutes < 0.0

    def test_failover_sensitivity_zero_without_ha(self, system):
        report = sensitivity_analysis(system)
        assert report.for_cluster("st").wrt_failover_minutes == 0.0

    def test_failure_rate_sensitivity_zero_without_ha(self, system):
        # f_i only enters U_s through F_s; a bare cluster has no failovers.
        report = sensitivity_analysis(system)
        assert report.for_cluster("st").wrt_failures_per_year == pytest.approx(0.0)

    def test_bare_flaky_storage_dominated_by_p(self, system):
        report = sensitivity_analysis(system)
        assert report.for_cluster("st").dominant_input == "down_probability"

    def test_unknown_cluster_raises(self, system):
        report = sensitivity_analysis(system)
        with pytest.raises(KeyError):
            report.for_cluster("nope")

    def test_describe_is_multiline(self, system):
        text = sensitivity_analysis(system).describe()
        assert text.count("\n") >= 2

    def test_magnitude_ordering_matches_structure(self, system):
        # The serial chain is far more sensitive to the unprotected flaky
        # disk than to one host in a 3+1 cluster.
        report = sensitivity_analysis(system)
        assert abs(report.for_cluster("st").wrt_down_probability) > abs(
            report.for_cluster("c").wrt_down_probability
        )
