"""Per-cluster binomial math (the inner sum of Eq. 2)."""

from __future__ import annotations

import math

import pytest

from repro.availability.cluster_math import (
    active_nodes_up_probability,
    binomial_pmf,
    cluster_down_probability,
    cluster_up_probability,
    up_probability,
)
from repro.errors import ValidationError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


class TestBinomialPmf:
    def test_sums_to_one(self):
        total = sum(binomial_pmf(k, 5, 0.3) for k in range(6))
        assert total == pytest.approx(1.0)

    def test_matches_closed_form(self):
        # C(4,2) * 0.7^2 * 0.3^2 = 6 * 0.49 * 0.09
        assert binomial_pmf(2, 4, 0.7) == pytest.approx(6 * 0.49 * 0.09)

    def test_certain_success(self):
        assert binomial_pmf(3, 3, 1.0) == 1.0

    def test_certain_failure(self):
        assert binomial_pmf(0, 3, 0.0) == 1.0

    def test_rejects_successes_above_trials(self):
        with pytest.raises(ValidationError):
            binomial_pmf(4, 3, 0.5)

    def test_rejects_negative_trials(self):
        with pytest.raises(ValidationError):
            binomial_pmf(0, -1, 0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            binomial_pmf(1, 2, 1.5)


class TestUpProbability:
    def test_single_node_no_tolerance(self):
        # Cluster up iff its one node is up.
        assert up_probability(1, 0, 0.02) == pytest.approx(0.98)

    def test_all_nodes_needed(self):
        # No tolerance: all 3 up -> (1-P)^3.
        assert up_probability(3, 0, 0.01) == pytest.approx(0.99**3)

    def test_mirrored_pair(self):
        # RAID-1 pair: up unless both disks fail -> 1 - P^2.
        assert up_probability(2, 1, 0.1) == pytest.approx(1 - 0.01)

    def test_three_plus_one(self):
        # The case study's compute shape: K=4, K-hat=1.
        p = 0.0025
        expected = (1 - p) ** 4 + 4 * (1 - p) ** 3 * p
        assert up_probability(4, 1, p) == pytest.approx(expected)

    def test_perfect_nodes(self):
        assert up_probability(5, 2, 0.0) == 1.0

    def test_tolerance_improves_availability(self):
        base = up_probability(4, 0, 0.05)
        tolerant = up_probability(4, 1, 0.05)
        more_tolerant = up_probability(4, 2, 0.05)
        assert base < tolerant < more_tolerant

    def test_result_is_probability(self):
        for tolerance in range(4):
            value = up_probability(5, tolerance, 0.3)
            assert 0.0 <= value <= 1.0

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValidationError):
            up_probability(3, 3, 0.1)


class TestClusterWrappers:
    def test_cluster_up_probability_uses_spec(self):
        node = NodeSpec("disk", 0.1, 4.0)
        cluster = ClusterSpec(
            "st", Layer.STORAGE, node, total_nodes=2,
            standby_tolerance=1, failover_minutes=1.0,
        )
        assert cluster_up_probability(cluster) == pytest.approx(0.99)

    def test_down_is_complement_of_up(self):
        node = NodeSpec("disk", 0.07, 4.0)
        cluster = ClusterSpec("st", Layer.STORAGE, node, total_nodes=3)
        total = cluster_up_probability(cluster) + cluster_down_probability(cluster)
        assert total == pytest.approx(1.0)

    def test_active_nodes_up_probability(self):
        node = NodeSpec("host", 0.02, 4.0)
        cluster = ClusterSpec(
            "c", Layer.COMPUTE, node, total_nodes=4,
            standby_tolerance=1, failover_minutes=5.0,
        )
        # (1-P)^(K - K-hat) = 0.98^3
        assert active_nodes_up_probability(cluster) == pytest.approx(0.98**3)
