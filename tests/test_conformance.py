"""The v2 conformance suite: passes a compliant build, indicts a broken one.

Three servers are exercised: the real hardened server (everything
passes), the real plain server (optional-feature checks skip, nothing
fails), and a deliberately replay-violating stub (the replay checks
fail with actionable detail) — the suite must be able to *catch* the
bug class it exists for, not just bless the reference implementation.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.broker.envelope import ErrorEnvelope
from repro.broker.service import BrokerService
from repro.cli.main import main
from repro.cloud.providers import all_providers
from repro.conformance import (
    CheckResult,
    ConformanceReport,
    run_conformance,
)
from repro.server import start_in_thread

OBSERVE_YEARS = 1.0
SEED = 23
TOKEN = "conform-test-token"

ALL_CHECKS = (
    "health-endpoint",
    "error-envelope-shape",
    "envelope-key-discipline",
    "recommend-round-trip",
    "trace-header-behaviour",
    "idempotent-recommend-replay",
    "idempotent-submit-replay",
    "idempotent-ingest-replay",
    "job-result-replay",
    "cross-worker-replay",
    "auth-error-shape",
    "rate-limit-shape",
)


def observed_broker() -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=OBSERVE_YEARS, seed=SEED)
    return broker


def by_name(report: ConformanceReport) -> dict[str, CheckResult]:
    return {result.check: result for result in report.results}


@pytest.fixture(scope="module")
def hardened_handle():
    with start_in_thread(
        observed_broker(),
        shards=2,
        auth_token=TOKEN,
        rate_limit=30.0,
        rate_limit_burst=10,
    ) as handle:
        yield handle


class TestAgainstHardenedServer:
    @pytest.fixture(scope="class")
    def report(self, hardened_handle):
        return run_conformance(hardened_handle.url, auth_token=TOKEN)

    def test_every_check_passes(self, report):
        assert report.ok, report.to_text()
        assert report.failed == 0
        assert report.skipped == 0
        assert report.passed == len(ALL_CHECKS)

    def test_check_roster_is_complete_and_ordered(self, report):
        assert tuple(result.check for result in report.results) == ALL_CHECKS

    def test_optional_feature_checks_were_exercised(self, report):
        results = by_name(report)
        assert results["auth-error-shape"].status == "pass"
        assert results["rate-limit-shape"].status == "pass"
        assert "Retry-After" in results["rate-limit-shape"].detail


class TestAgainstPlainServer:
    def test_optional_features_skip_rather_than_fail(self):
        with start_in_thread(observed_broker(), shards=2) as handle:
            report = run_conformance(handle.url)
        results = by_name(report)
        assert report.ok, report.to_text()
        assert results["auth-error-shape"].status == "skip"
        assert "disabled" in results["auth-error-shape"].detail
        assert results["rate-limit-shape"].status == "skip"
        assert results["idempotent-submit-replay"].status == "pass"
        assert report.skipped == 2


class _ReplayViolatingHandler(BaseHTTPRequestHandler):
    """A v2-shaped server with the exact bug the suite hunts: keyed
    requests re-execute (fresh body, no replay marker) instead of
    replaying the recorded response."""

    protocol_version = "HTTP/1.1"
    counter = 0

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send_json(200, {"kind": "health", "status": "ok"})
            return
        self._send_json(
            404,
            ErrorEnvelope(
                404, "unknown-route", f"no route {self.path}"
            ).to_dict(),
        )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        cls = _ReplayViolatingHandler
        cls.counter += 1
        if self.path == "/v2/recommend":
            # Re-executed: every "replay" observably differs.
            self._send_json(200, {"kind": "bogus", "n": cls.counter})
            return
        if self.path == "/v2/jobs":
            self._send_json(202, {"job_id": f"job-{cls.counter:06d}"})
            return
        if self.path == "/v2/ingest":
            self._send_json(202, {"accepted": cls.counter})
            return
        self._send_json(
            404,
            ErrorEnvelope(404, "unknown-route", "nope").to_dict(),
        )

    def log_message(self, *args) -> None:  # quiet test output
        pass


class TestAgainstReplayViolatingStub:
    @pytest.fixture(scope="class")
    def report(self):
        _ReplayViolatingHandler.counter = 0
        server = ThreadingHTTPServer(
            ("127.0.0.1", 0), _ReplayViolatingHandler
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            yield run_conformance(f"http://{host}:{port}", timeout=10.0)
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()

    def test_violations_are_caught_not_blessed(self, report):
        assert not report.ok
        results = by_name(report)
        # The server is reachable and speaks the basic shapes...
        assert results["health-endpoint"].status == "pass"
        assert results["error-envelope-shape"].status == "pass"
        # ...but every replay obligation is violated and indicted.
        for check in (
            "idempotent-recommend-replay",
            "idempotent-submit-replay",
            "idempotent-ingest-replay",
        ):
            assert results[check].status == "fail", report.to_text()

    def test_failures_carry_actionable_detail(self, report):
        results = by_name(report)
        assert "byte-identical" in results["idempotent-recommend-replay"].detail
        submit_detail = results["idempotent-submit-replay"].detail
        assert "byte-identical" in submit_detail or "distinct jobs" in submit_detail
        assert "NOT CONFORMANT" in report.to_text()
        for result in report.results:
            if result.status == "fail":
                assert result.detail, f"{result.check} failed without detail"


class TestReportShape:
    def _report(self) -> ConformanceReport:
        return ConformanceReport(
            url="http://example:1",
            results=(
                CheckResult("health-endpoint", "pass", "healthy"),
                CheckResult("rate-limit-shape", "skip", "disabled"),
                CheckResult("idempotent-submit-replay", "fail", "re-executed"),
            ),
        )

    def test_counts_and_verdict(self):
        report = self._report()
        assert (report.passed, report.failed, report.skipped) == (1, 1, 1)
        assert not report.ok
        assert "NOT CONFORMANT: 1 passed, 1 failed, 1 skipped" in report.to_text()

    def test_json_document_shape(self):
        payload = json.loads(self._report().to_json())
        assert payload["kind"] == "conformance-report"
        assert payload["ok"] is False
        assert payload["url"] == "http://example:1"
        assert [r["check"] for r in payload["results"]] == [
            "health-endpoint",
            "rate-limit-shape",
            "idempotent-submit-replay",
        ]
        assert all(
            set(r) == {"check", "status", "detail"}
            for r in payload["results"]
        )


class TestConformCli:
    def test_cli_writes_json_report_and_exits_zero(
        self, hardened_handle, tmp_path, capsys
    ):
        json_path = tmp_path / "conform-report.json"
        code = main([
            "conform",
            "--url", hardened_handle.url,
            "--auth-token", TOKEN,
            "--json", str(json_path),
        ])
        assert code == 0
        assert "CONFORMANT" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert payload["ok"] is True
        assert payload["failed"] == 0

    def test_cli_exit_code_reflects_violations(self, tmp_path, capsys):
        _ReplayViolatingHandler.counter = 0
        server = ThreadingHTTPServer(
            ("127.0.0.1", 0), _ReplayViolatingHandler
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            code = main([
                "conform", "--url", f"http://{host}:{port}",
                "--timeout", "10.0",
            ])
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
        assert code == 1
        assert "NOT CONFORMANT" in capsys.readouterr().out
