"""Duration distributions and the renewal-reward robustness result."""

from __future__ import annotations

import math
import random

import pytest

from repro.availability.model import evaluate_availability
from repro.errors import ValidationError
from repro.simulation.distributions import (
    DETERMINISTIC,
    EXPONENTIAL,
    HEAVY_TAILED,
    LOW_VARIANCE,
    DurationDistribution,
)
from repro.simulation.monte_carlo import monte_carlo
from repro.workloads.case_study import case_study_base_system


class TestDurationDistribution:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValidationError, match="family"):
            DurationDistribution("cauchy")

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            DurationDistribution("weibull", weibull_shape=0.0)

    def test_deterministic_returns_mean(self):
        rng = random.Random(1)
        assert DETERMINISTIC.sample(42.0, rng) == 42.0

    def test_infinite_mean_passes_through(self):
        rng = random.Random(1)
        assert math.isinf(EXPONENTIAL.sample(math.inf, rng))
        assert math.isinf(HEAVY_TAILED.sample(math.inf, rng))

    def test_zero_mean_is_zero(self):
        rng = random.Random(1)
        assert EXPONENTIAL.sample(0.0, rng) == 0.0

    @pytest.mark.parametrize(
        "distribution",
        [EXPONENTIAL, HEAVY_TAILED, LOW_VARIANCE, DETERMINISTIC],
        ids=["expo", "heavy", "low-var", "det"],
    )
    def test_mean_preserved(self, distribution):
        """Every family is mean-parameterized: the sample mean converges
        to the requested mean."""
        rng = random.Random(7)
        target = 120.0
        samples = [distribution.sample(target, rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(target, rel=0.05)

    def test_cv_ordering(self):
        assert DETERMINISTIC.coefficient_of_variation() == 0.0
        assert EXPONENTIAL.coefficient_of_variation() == 1.0
        assert HEAVY_TAILED.coefficient_of_variation() > 1.0
        assert LOW_VARIANCE.coefficient_of_variation() < 1.0

    def test_weibull_cv_matches_empirical(self):
        rng = random.Random(11)
        dist = DurationDistribution("weibull", weibull_shape=0.7)
        samples = [dist.sample(50.0, rng) for _ in range(40_000)]
        mean = sum(samples) / len(samples)
        var = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
        empirical_cv = math.sqrt(var) / mean
        assert empirical_cv == pytest.approx(
            dist.coefficient_of_variation(), rel=0.1
        )


class TestRenewalRewardRobustness:
    """Availability depends on means only — not on duration shapes."""

    @pytest.mark.parametrize(
        "distribution",
        [HEAVY_TAILED, LOW_VARIANCE, DETERMINISTIC],
        ids=["heavy", "low-var", "det"],
    )
    def test_analytic_uptime_inside_ci_for_every_shape(self, distribution):
        system = case_study_base_system()
        analytic = evaluate_availability(system).uptime_probability
        result = monte_carlo(
            system,
            replications=50,
            seed=31,
            down_distribution=distribution,
        )
        assert result.contains(analytic), (
            f"{distribution.family}: CI {result.availability_ci95} "
            f"misses analytic {analytic}"
        )

    def test_heavy_tail_raises_downtime_variance(self):
        """Shapes do change the *variance* of per-run downtime — the
        effect the realized-penalty ablation (A3/A4) builds on."""
        system = case_study_base_system()
        smooth = monte_carlo(
            system, replications=40, seed=37, down_distribution=DETERMINISTIC
        )
        heavy = monte_carlo(
            system, replications=40, seed=37, down_distribution=HEAVY_TAILED
        )
        assert heavy.availability_stderr > smooth.availability_stderr
