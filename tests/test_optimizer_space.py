"""CandidateSpace: k^n enumeration in paper order."""

from __future__ import annotations

import pytest

from repro.errors import OptimizerError
from repro.optimizer.space import CandidateSpace, OptimizationProblem


class TestSpaceShape:
    def test_size_is_k_to_the_n(self, simple_problem):
        space = simple_problem.space()
        assert space.cluster_count == 3
        assert space.choice_counts == (2, 2, 2)
        assert space.size == 8

    def test_enumerates_exactly_size_candidates(self, simple_problem):
        space = simple_problem.space()
        candidates = list(space.candidates_in_paper_order())
        assert len(candidates) == space.size
        assert len(set(candidates)) == space.size

    def test_base_system_ha_is_stripped(self, simple_problem):
        space = simple_problem.space()
        assert all(not cluster.has_ha for cluster in space.bare_system.clusters)


class TestPaperOrder:
    def test_first_candidate_is_all_bare(self, simple_problem):
        space = simple_problem.space()
        first = next(iter(space.candidates_in_paper_order()))
        assert first == (0, 0, 0)

    def test_order_matches_paper_numbering(self, simple_problem):
        """For k=2, n=3 the paper numbers options #1..#8 as:

        none; network; storage; compute; storage+network;
        compute+network; compute+storage; all.
        """
        space = simple_problem.space()
        candidates = list(space.candidates_in_paper_order())
        assert candidates == [
            (0, 0, 0),
            (0, 0, 1),
            (0, 1, 0),
            (1, 0, 0),
            (0, 1, 1),
            (1, 0, 1),
            (1, 1, 0),
            (1, 1, 1),
        ]

    def test_clustered_count_non_decreasing(self, simple_problem):
        space = simple_problem.space()
        counts = [
            sum(1 for index in candidate if index != 0)
            for candidate in space.candidates_in_paper_order()
        ]
        assert counts == sorted(counts)


class TestInstantiate:
    def test_all_none_is_bare(self, simple_problem):
        space = simple_problem.space()
        system = space.instantiate((0, 0, 0))
        assert all(not cluster.has_ha for cluster in system.clusters)

    def test_choice_applies_technology(self, simple_problem):
        space = simple_problem.space()
        system = space.instantiate((0, 1, 0))
        assert system.cluster("storage").ha_technology == "raid-1"
        assert not system.cluster("compute").has_ha

    def test_choice_names(self, simple_problem):
        space = simple_problem.space()
        assert space.choice_names((1, 0, 1)) == (
            "hypervisor-n+1", "none", "dual-gateway",
        )

    def test_wrong_arity_rejected(self, simple_problem):
        space = simple_problem.space()
        with pytest.raises(OptimizerError, match="choice indices"):
            space.instantiate((0, 0))

    def test_out_of_range_choice_rejected(self, simple_problem):
        space = simple_problem.space()
        with pytest.raises(OptimizerError, match="out of range"):
            space.instantiate((0, 0, 5))

    def test_instantiation_is_pure(self, simple_problem):
        space = simple_problem.space()
        first = space.instantiate((1, 1, 1))
        second = space.instantiate((1, 1, 1))
        assert first == second
        assert all(not cluster.has_ha for cluster in space.bare_system.clusters)


class TestPaperOrderLazyEnumeration:
    """The lazy generator and arithmetic ids must match the sorted spec."""

    @staticmethod
    def _legacy_order(space):
        import itertools

        everything = itertools.product(*(range(k) for k in space.choice_counts))

        def paper_key(indices):
            clustered = [i for i, choice in enumerate(indices) if choice != 0]
            return (len(clustered), tuple(-i for i in sorted(clustered)), indices)

        return sorted(everything, key=paper_key)

    def test_matches_sorted_enumeration(self):
        from repro.workloads.generators import random_problem

        for seed, clusters, choices in ((0, 3, 2), (1, 4, 3), (2, 5, 2)):
            space = random_problem(
                seed, clusters=clusters, choices_per_layer=choices
            ).space()
            assert list(space.candidates_in_paper_order()) == (
                self._legacy_order(space)
            )

    def test_paper_order_id_matches_enumeration(self):
        from repro.workloads.generators import random_problem

        space = random_problem(4, clusters=4, choices_per_layer=3).space()
        for option_id, indices in enumerate(
            space.candidates_in_paper_order(), start=1
        ):
            assert space.paper_order_id(indices) == option_id

    def test_paper_order_id_validates_input(self):
        import pytest

        from repro.errors import OptimizerError
        from repro.workloads.generators import random_problem

        space = random_problem(4, clusters=3, choices_per_layer=2).space()
        with pytest.raises(OptimizerError, match="choice indices"):
            space.paper_order_id((0, 0))
        with pytest.raises(OptimizerError, match="out of range"):
            space.paper_order_id((0, 99, 0))

    def test_enumeration_is_lazy(self):
        from repro.workloads.case_study import case_study_problem

        iterator = case_study_problem().space().candidates_in_paper_order()
        assert next(iterator) == (0, 0, 0)
