"""Brute force, pruned search, branch-and-bound: agreement and behaviour."""

from __future__ import annotations

import pytest

from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import _is_superset_extension, pruned_optimize
from repro.workloads.generators import random_problem


class TestBruteForce:
    def test_evaluates_everything(self, simple_problem):
        result = brute_force_optimize(simple_problem)
        assert result.evaluations == result.space_size == 8
        assert result.pruned == 0

    def test_option_ids_are_sequential(self, simple_problem):
        result = brute_force_optimize(simple_problem)
        assert [option.option_id for option in result.options] == list(range(1, 9))

    def test_best_is_minimum_tco(self, simple_problem):
        result = brute_force_optimize(simple_problem)
        assert result.best.tco.total == min(
            option.tco.total for option in result.options
        )

    def test_strategy_label(self, simple_problem):
        assert brute_force_optimize(simple_problem).strategy == "brute-force"


class TestSupersetPredicate:
    def test_adding_a_layer_is_extension(self):
        assert _is_superset_extension(
            ("none", "raid-1", "dual-gateway"), ("none", "raid-1", "none")
        )

    def test_equal_assignment_is_not_extension(self):
        assert not _is_superset_extension(
            ("none", "raid-1", "none"), ("none", "raid-1", "none")
        )

    def test_different_technology_is_not_extension(self):
        assert not _is_superset_extension(
            ("none", "raid-10", "dual-gateway"), ("none", "raid-1", "none")
        )

    def test_removing_a_layer_is_not_extension(self):
        assert not _is_superset_extension(
            ("none", "none", "none"), ("none", "raid-1", "none")
        )


class TestPruned:
    def test_same_optimum_as_brute_force(self, simple_problem):
        brute = brute_force_optimize(simple_problem)
        pruned = pruned_optimize(simple_problem)
        assert pruned.best.tco.total == pytest.approx(brute.best.tco.total)
        assert pruned.best.choice_names == brute.best.choice_names

    def test_never_evaluates_more_than_brute_force(self, simple_problem):
        pruned = pruned_optimize(simple_problem)
        assert pruned.evaluations + pruned.pruned == pruned.space_size

    def test_prunes_supersets_of_sla_meeting_options(self, paper_problem):
        # In the calibrated case study #5 meets the SLA, so #8 is clipped
        # (exactly the paper's §III-C example).
        pruned = pruned_optimize(paper_problem)
        evaluated_ids = {option.option_id for option in pruned.options}
        assert 5 in evaluated_ids
        assert 8 not in evaluated_ids
        assert pruned.pruned == 1

    def test_agreement_on_random_problems(self):
        for seed in range(12):
            problem = random_problem(seed, clusters=3, choices_per_layer=2)
            brute = brute_force_optimize(problem)
            pruned = pruned_optimize(problem)
            assert pruned.best.tco.total == pytest.approx(
                brute.best.tco.total
            ), f"seed {seed} diverged"

    def test_agreement_with_wider_choice_sets(self):
        for seed in (3, 17, 29):
            problem = random_problem(seed, clusters=4, choices_per_layer=3)
            brute = brute_force_optimize(problem)
            pruned = pruned_optimize(problem)
            assert pruned.best.tco.total == pytest.approx(brute.best.tco.total)


class TestBranchAndBound:
    def test_same_optimum_as_brute_force(self, simple_problem):
        brute = brute_force_optimize(simple_problem)
        bnb = branch_and_bound_optimize(simple_problem)
        assert bnb.best.tco.total == pytest.approx(brute.best.tco.total)

    def test_agreement_on_random_problems(self):
        for seed in range(12):
            problem = random_problem(seed, clusters=3, choices_per_layer=2)
            brute = brute_force_optimize(problem)
            bnb = branch_and_bound_optimize(problem)
            assert bnb.best.tco.total == pytest.approx(
                brute.best.tco.total
            ), f"seed {seed} diverged"

    def test_accounting_adds_up(self, simple_problem):
        bnb = branch_and_bound_optimize(simple_problem)
        assert bnb.evaluations + bnb.pruned == bnb.space_size

    def test_prunes_on_case_study(self, paper_problem):
        bnb = branch_and_bound_optimize(paper_problem)
        assert bnb.pruned > 0
        assert bnb.best.option_id == 3

    def test_option_ids_match_paper_order(self, paper_problem):
        bnb = branch_and_bound_optimize(paper_problem)
        brute = brute_force_optimize(paper_problem)
        for option in bnb.options:
            reference = brute.option(option.option_id)
            assert option.choice_names == reference.choice_names
