"""SystemTopology: the serial chain and its operations."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology


@pytest.fixture
def node() -> NodeSpec:
    return NodeSpec("host", 0.01, 4.0, 100.0)


def make_cluster(name: str, node: NodeSpec, layer: Layer = Layer.COMPUTE) -> ClusterSpec:
    return ClusterSpec(name, layer, node, total_nodes=2)


class TestConstruction:
    def test_valid_system(self, node):
        system = SystemTopology("s", (make_cluster("a", node),))
        assert len(system) == 1
        assert system.cluster_names == ("a",)

    def test_rejects_empty_name(self, node):
        with pytest.raises(TopologyError, match="name"):
            SystemTopology("", (make_cluster("a", node),))

    def test_rejects_no_clusters(self):
        with pytest.raises(TopologyError, match="at least one"):
            SystemTopology("s", ())

    def test_rejects_duplicate_cluster_names(self, node):
        with pytest.raises(TopologyError, match="duplicate"):
            SystemTopology("s", (make_cluster("a", node), make_cluster("a", node)))

    def test_iterates_in_chain_order(self, node):
        system = SystemTopology(
            "s", (make_cluster("a", node), make_cluster("b", node))
        )
        assert [cluster.name for cluster in system] == ["a", "b"]


class TestLookups:
    def test_cluster_by_name(self, node):
        system = SystemTopology("s", (make_cluster("a", node),))
        assert system.cluster("a").name == "a"

    def test_missing_cluster_lists_available(self, node):
        system = SystemTopology("s", (make_cluster("a", node),))
        with pytest.raises(TopologyError, match="available"):
            system.cluster("zzz")

    def test_clusters_in_layer(self, node):
        system = SystemTopology(
            "s",
            (
                make_cluster("c1", node, Layer.COMPUTE),
                make_cluster("st", node, Layer.STORAGE),
                make_cluster("c2", node, Layer.COMPUTE),
            ),
        )
        compute = system.clusters_in_layer(Layer.COMPUTE)
        assert [cluster.name for cluster in compute] == ["c1", "c2"]
        assert system.clusters_in_layer(Layer.NETWORK) == ()


class TestMutations:
    def test_replace_cluster(self, node):
        system = SystemTopology("s", (make_cluster("a", node),))
        bigger = ClusterSpec("a", Layer.COMPUTE, node, total_nodes=5)
        updated = system.replace_cluster("a", bigger)
        assert updated.cluster("a").total_nodes == 5
        assert system.cluster("a").total_nodes == 2  # original untouched

    def test_replace_missing_cluster_raises(self, node):
        system = SystemTopology("s", (make_cluster("a", node),))
        with pytest.raises(TopologyError):
            system.replace_cluster("zzz", make_cluster("zzz", node))

    def test_with_clusters_swaps_many(self, node):
        system = SystemTopology(
            "s", (make_cluster("a", node), make_cluster("b", node))
        )
        updated = system.with_clusters(
            {
                "a": ClusterSpec("a", Layer.COMPUTE, node, total_nodes=4),
                "b": ClusterSpec("b", Layer.COMPUTE, node, total_nodes=6),
            }
        )
        assert updated.cluster("a").total_nodes == 4
        assert updated.cluster("b").total_nodes == 6

    def test_strip_ha_removes_all_redundancy(self, node):
        clustered = ClusterSpec(
            "a", Layer.COMPUTE, node, total_nodes=4,
            standby_tolerance=1, failover_minutes=10.0,
            ha_technology="x", monthly_ha_infra_cost=50.0,
        )
        system = SystemTopology("s", (clustered,))
        bare = system.strip_ha()
        assert bare.cluster("a").total_nodes == 3
        assert not bare.cluster("a").has_ha


class TestAggregates:
    def test_monthly_base_infra_cost(self, node):
        system = SystemTopology(
            "s", (make_cluster("a", node), make_cluster("b", node))
        )
        # Two clusters x two nodes x $100.
        assert system.monthly_base_infra_cost == pytest.approx(400.0)

    def test_ha_signature(self, node):
        clustered = ClusterSpec(
            "b", Layer.STORAGE, node, total_nodes=2,
            standby_tolerance=1, failover_minutes=1.0, ha_technology="raid-1",
        )
        system = SystemTopology("s", (make_cluster("a", node), clustered))
        assert system.ha_signature == ("none", "raid-1")

    def test_describe_lists_all_clusters(self, node):
        system = SystemTopology(
            "s", (make_cluster("a", node), make_cluster("b", node))
        )
        text = system.describe()
        assert "a:" in text and "b:" in text
