"""Trace capture, JSON round-trip, and replay into broker telemetry."""

from __future__ import annotations

import pytest

from repro.broker.knowledge_base import KnowledgeBase
from repro.broker.telemetry import TelemetryStore
from repro.errors import SimulationError, ValidationError
from repro.simulation.engine import SimulationOptions, simulate
from repro.simulation.events import EventKind, SimulationEvent
from repro.simulation.trace import (
    TraceRecorder,
    ingest_trace,
    trace_to_resource_events,
)
from repro.units import MINUTES_PER_YEAR
from repro.workloads.case_study import case_study_base_system

HORIZON = 10 * MINUTES_PER_YEAR


@pytest.fixture(scope="module")
def recorded():
    system = case_study_base_system()
    recorder = TraceRecorder()
    simulate(
        system,
        SimulationOptions(horizon_minutes=HORIZON, seed=101),
        observer=recorder,
    )
    return system, recorder


class TestRecorder:
    def test_captures_events(self, recorded):
        _system, recorder = recorded
        assert len(recorder) > 0

    def test_json_roundtrip(self, recorded):
        _system, recorder = recorded
        restored = TraceRecorder.from_json(recorder.to_json())
        assert restored.events == recorder.events

    def test_rejects_bad_version(self, recorded):
        _system, recorder = recorded
        payload = recorder.to_dict()
        payload["trace_version"] = 9
        with pytest.raises(ValidationError, match="trace_version"):
            TraceRecorder.from_dict(payload)

    def test_rejects_bad_json(self):
        with pytest.raises(ValidationError, match="invalid trace"):
            TraceRecorder.from_json("{oops")


class TestConversion:
    def test_failures_and_repairs_pair_up(self, recorded):
        system, recorder = recorded
        observations = trace_to_resource_events(system, recorder, "sim")
        failures = [o for o in observations if o.kind.value == "failure"]
        repairs = [o for o in observations if o.kind.value == "repair"]
        # Every repair closes a failure; at most a handful of outages
        # stay open at the horizon.
        assert 0 <= len(failures) - len(repairs) <= 5

    def test_repair_durations_positive(self, recorded):
        system, recorder = recorded
        observations = trace_to_resource_events(system, recorder, "sim")
        for obs in observations:
            if obs.kind.value == "repair":
                assert obs.duration_minutes > 0.0

    def test_component_kinds_follow_layers(self, recorded):
        system, recorder = recorded
        observations = trace_to_resource_events(system, recorder, "sim")
        kinds = {o.resource_id.split("/")[0]: o.component_kind for o in observations}
        assert kinds["compute"] == "vm"
        assert kinds["storage"] == "volume"
        assert kinds["network"] == "gateway"

    def test_unknown_cluster_rejected(self, recorded):
        system, _recorder = recorded
        rogue = TraceRecorder()
        rogue.events.append(
            SimulationEvent(1.0, 0, EventKind.NODE_FAILED, "mars", 0)
        )
        with pytest.raises(SimulationError, match="unknown cluster"):
            trace_to_resource_events(system, rogue, "sim")

    def test_repair_without_failure_rejected(self, recorded):
        system, _recorder = recorded
        rogue = TraceRecorder()
        rogue.events.append(
            SimulationEvent(1.0, 0, EventKind.NODE_REPAIRED, "compute", 0)
        )
        with pytest.raises(SimulationError, match="without a prior failure"):
            trace_to_resource_events(system, rogue, "sim")


class TestIngestion:
    def test_estimates_recover_node_specs(self, recorded):
        """The telemetry learned from a simulation trace must agree with
        the node specs the simulation ran on — closing the loop between
        the engine and the broker."""
        system, recorder = recorded
        store = TelemetryStore()
        ingest_trace(store, system, recorder, "sim", HORIZON)
        kb = KnowledgeBase(store, min_failure_samples=1)
        checks = {
            "vm": system.cluster("compute").node,
            "volume": system.cluster("storage").node,
            "gateway": system.cluster("network").node,
        }
        for kind, node in checks.items():
            estimate = store.down_probability("sim", kind)
            assert estimate == pytest.approx(node.down_probability, rel=0.3)
            rate = store.failures_per_year("sim", kind)
            assert rate == pytest.approx(node.failures_per_year, rel=0.2)

    def test_exposure_counts_all_nodes(self, recorded):
        system, recorder = recorded
        store = TelemetryStore()
        ingest_trace(store, system, recorder, "sim", HORIZON)
        # 3 compute nodes watched for 10 years = 30 component-years.
        assert store.exposure_years("sim", "vm") == pytest.approx(30.0)

    def test_rejects_nonpositive_horizon(self, recorded):
        system, recorder = recorded
        with pytest.raises(ValidationError):
            ingest_trace(TelemetryStore(), system, recorder, "sim", 0.0)
