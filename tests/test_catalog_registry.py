"""TechnologyRegistry: per-layer choice sets for the optimizer."""

from __future__ import annotations

import pytest

from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.raid import RAID1
from repro.catalog.registry import (
    TechnologyRegistry,
    case_study_registry,
    default_registry,
    extended_registry,
)
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


@pytest.fixture
def storage_cluster():
    return ClusterSpec(
        "st", Layer.STORAGE, NodeSpec("disk", 0.02, 5.0, 100.0), total_nodes=1
    )


class TestRegistry:
    def test_none_is_always_first_choice(self):
        registry = TechnologyRegistry()
        for layer in Layer:
            choices = registry.choices_for_layer(layer)
            assert choices[0].name == "none"

    def test_empty_registry_has_one_choice_per_layer(self):
        registry = TechnologyRegistry()
        assert all(
            len(registry.choices_for_layer(layer)) == 1 for layer in Layer
        )

    def test_register_adds_to_right_layer(self):
        registry = TechnologyRegistry()
        registry.register(RAID1())
        assert len(registry.choices_for_layer(Layer.STORAGE)) == 2
        assert len(registry.choices_for_layer(Layer.COMPUTE)) == 1

    def test_duplicate_names_rejected(self):
        registry = TechnologyRegistry()
        registry.register(RAID1())
        with pytest.raises(CatalogError, match="already registered"):
            registry.register(RAID1(failover_minutes=2.0))

    def test_distinct_names_coexist(self):
        registry = TechnologyRegistry()
        registry.register(HypervisorHA(standby_nodes=1))
        registry.register(HypervisorHA(standby_nodes=2))
        names = [t.name for t in registry.choices_for_layer(Layer.COMPUTE)]
        assert names == ["none", "hypervisor-n+1", "hypervisor-n+2"]

    def test_lookup_by_name(self):
        registry = TechnologyRegistry()
        registry.register(RAID1())
        assert registry.lookup("raid-1", Layer.STORAGE).name == "raid-1"

    def test_lookup_missing_lists_available(self):
        registry = TechnologyRegistry()
        with pytest.raises(CatalogError, match="available"):
            registry.lookup("bogus", Layer.STORAGE)

    def test_choices_for_cluster_uses_layer(self, storage_cluster):
        registry = TechnologyRegistry()
        registry.register(RAID1())
        names = [t.name for t in registry.choices_for_cluster(storage_cluster)]
        assert "raid-1" in names

    def test_choice_counts(self, storage_cluster):
        registry = TechnologyRegistry()
        registry.register(RAID1())
        assert registry.choice_counts((storage_cluster,)) == (2,)

    def test_describe_lists_layers(self):
        text = case_study_registry().describe()
        assert "compute" in text and "storage" in text and "network" in text


class TestStockRegistries:
    def test_case_study_is_k2_everywhere(self):
        registry = case_study_registry()
        for layer in (Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK):
            assert len(registry.choices_for_layer(layer)) == 2

    def test_case_study_technologies_match_paper(self):
        registry = case_study_registry()
        assert registry.lookup("hypervisor-n+1", Layer.COMPUTE)
        assert registry.lookup("raid-1", Layer.STORAGE)
        assert registry.lookup("dual-gateway", Layer.NETWORK)

    def test_case_study_knobs_flow_through(self):
        registry = case_study_registry(
            hypervisor_license_per_node=99.0, hypervisor_failover_minutes=7.0
        )
        tech = registry.lookup("hypervisor-n+1", Layer.COMPUTE)
        assert tech.monthly_license_per_node == 99.0
        assert tech.failover_minutes == 7.0

    def test_default_registry_widens_compute_and_storage(self):
        registry = default_registry()
        assert len(registry.choices_for_layer(Layer.COMPUTE)) == 3
        assert len(registry.choices_for_layer(Layer.STORAGE)) == 3

    def test_extended_registry_choice_counts(self):
        registry = extended_registry()
        assert len(registry.choices_for_layer(Layer.COMPUTE)) == 6
        assert len(registry.choices_for_layer(Layer.STORAGE)) == 4
        assert len(registry.choices_for_layer(Layer.NETWORK)) == 3

    def test_extended_includes_future_work(self):
        registry = extended_registry()
        assert registry.lookup("os-cluster-n+1", Layer.COMPUTE)
        assert registry.lookup("sds-replica-3", Layer.STORAGE)
        assert registry.lookup("storage-multipath", Layer.STORAGE)
        assert registry.lookup("bgp-dual-circuit", Layer.NETWORK)

    def test_extended_includes_dr_postures(self):
        registry = extended_registry()
        assert registry.lookup("warm-standby", Layer.COMPUTE)
        assert registry.lookup("cold-standby", Layer.COMPUTE)
