"""Random generators and named scenarios."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.optimizer.pruned import pruned_optimize
from repro.workloads.generators import (
    random_contract,
    random_node_spec,
    random_problem,
    random_registry,
    random_system,
)
from repro.workloads.scenarios import SCENARIOS, scenario


class TestGenerators:
    def test_node_spec_deterministic_by_seed(self):
        assert random_node_spec(5) == random_node_spec(5)
        assert random_node_spec(5) != random_node_spec(6)

    def test_system_has_requested_clusters(self):
        system = random_system(1, clusters=6)
        assert len(system) == 6

    def test_system_layers_cycle(self):
        from repro.topology.cluster import Layer

        system = random_system(2, clusters=6)
        layers = [cluster.layer for cluster in system]
        assert layers == [
            Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK,
        ] * 2

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValidationError):
            random_system(1, clusters=0)

    def test_registry_choice_counts(self):
        registry = random_registry(3, choices_per_layer=2)
        from repro.topology.cluster import Layer

        assert len(registry.choices_for_layer(Layer.COMPUTE)) == 3
        assert len(registry.choices_for_layer(Layer.STORAGE)) == 3

    def test_registry_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            random_registry(1, choices_per_layer=0)
        with pytest.raises(ValidationError):
            random_registry(1, choices_per_layer=4)

    def test_contract_in_realistic_range(self):
        contract = random_contract(7)
        assert 95.0 <= contract.sla.target_percent <= 99.9

    def test_problem_is_solvable(self):
        result = pruned_optimize(random_problem(9))
        assert result.best is not None

    def test_problem_deterministic_by_seed(self):
        a = pruned_optimize(random_problem(4))
        b = pruned_optimize(random_problem(4))
        assert a.best.tco.total == b.best.tco.total


class TestScenarios:
    def test_three_scenarios_registered(self):
        assert set(SCENARIOS) == {"ecommerce", "payments", "analytics"}

    def test_lookup_by_name(self):
        assert scenario("ecommerce").name == "ecommerce"

    def test_unknown_scenario_lists_names(self):
        with pytest.raises(ValidationError, match="available"):
            scenario("space-station")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_optimizes(self, name):
        result = pruned_optimize(scenario(name).problem)
        assert result.best.tco.total >= 0.0

    def test_ecommerce_is_k2_n5(self):
        problem = scenario("ecommerce").problem
        assert problem.space().size == 2**5

    def test_payments_uses_extended_catalog(self):
        problem = scenario("payments").problem
        assert problem.space().size > 2**4

    def test_analytics_recommends_minimal_ha(self):
        # Lenient SLA, cheap penalty: HA should be limited (at most the
        # flaky data lake gets protected).
        result = pruned_optimize(scenario("analytics").problem)
        assert len(result.best.clustered_components) <= 1

    def test_payments_recommends_serious_ha(self):
        # 99.95% SLA with steep penalties: most layers need protection.
        result = pruned_optimize(scenario("payments").problem)
        assert len(result.best.clustered_components) >= 2
