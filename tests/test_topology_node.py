"""NodeSpec: reliability inputs and MTBF/MTTR conversions."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.topology.node import NodeSpec


class TestConstruction:
    def test_valid_node(self):
        node = NodeSpec("host", 0.01, 4.0, 100.0)
        assert node.kind == "host"
        assert node.up_probability == pytest.approx(0.99)

    def test_zero_cost_default(self):
        assert NodeSpec("host", 0.01, 4.0).monthly_cost == 0.0

    def test_rejects_empty_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            NodeSpec("", 0.01, 4.0)

    def test_rejects_negative_down_probability(self):
        with pytest.raises(ValidationError, match="down_probability"):
            NodeSpec("host", -0.1, 4.0)

    def test_rejects_down_probability_of_one(self):
        with pytest.raises(ValidationError, match="down_probability"):
            NodeSpec("host", 1.0, 4.0)

    def test_rejects_negative_failure_rate(self):
        with pytest.raises(ValidationError, match="failures_per_year"):
            NodeSpec("host", 0.01, -1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValidationError, match="monthly_cost"):
            NodeSpec("host", 0.01, 4.0, -5.0)

    def test_is_frozen(self):
        node = NodeSpec("host", 0.01, 4.0)
        with pytest.raises(AttributeError):
            node.down_probability = 0.5  # type: ignore[misc]


class TestMtbfMttr:
    def test_from_mtbf_mttr_down_probability(self):
        # 990 hours up, 10 hours down -> P = 10/1000 = 1%.
        node = NodeSpec.from_mtbf_mttr("host", mtbf_hours=990.0, mttr_hours=10.0)
        assert node.down_probability == pytest.approx(0.01)

    def test_from_mtbf_mttr_failure_rate(self):
        # One failure per 1000-hour cycle -> 8.76 failures/year.
        node = NodeSpec.from_mtbf_mttr("host", mtbf_hours=990.0, mttr_hours=10.0)
        assert node.failures_per_year == pytest.approx(8.76)

    def test_roundtrip_through_properties(self):
        node = NodeSpec.from_mtbf_mttr("host", mtbf_hours=500.0, mttr_hours=20.0)
        assert node.mtbf_hours == pytest.approx(500.0)
        assert node.mttr_hours == pytest.approx(20.0)

    def test_never_failing_node(self):
        node = NodeSpec("host", 0.0, 0.0)
        assert node.mtbf_hours == float("inf")
        assert node.mttr_hours == 0.0

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ValidationError, match="mtbf_hours"):
            NodeSpec.from_mtbf_mttr("host", mtbf_hours=0.0, mttr_hours=1.0)

    def test_rejects_negative_mttr(self):
        with pytest.raises(ValidationError, match="mttr_hours"):
            NodeSpec.from_mtbf_mttr("host", mtbf_hours=100.0, mttr_hours=-1.0)

    def test_zero_mttr_means_perfect_availability(self):
        node = NodeSpec.from_mtbf_mttr("host", mtbf_hours=100.0, mttr_hours=0.0)
        assert node.down_probability == 0.0
        assert node.failures_per_year > 0.0


class TestWithCost:
    def test_with_cost_returns_new_instance(self):
        node = NodeSpec("host", 0.01, 4.0, 100.0)
        priced = node.with_cost(250.0)
        assert priced.monthly_cost == 250.0
        assert node.monthly_cost == 100.0

    def test_with_cost_preserves_reliability(self):
        node = NodeSpec("host", 0.01, 4.0, 100.0)
        priced = node.with_cost(250.0)
        assert priced.down_probability == node.down_probability
        assert priced.failures_per_year == node.failures_per_year
