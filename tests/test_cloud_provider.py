"""Simulated cloud providers: catalogs, provisioning lifecycle, failure hooks."""

from __future__ import annotations

import pytest

from repro.cloud.instance_types import GatewayType, InstanceType, VolumeType
from repro.cloud.provider import ResourceKind, ResourceState
from repro.cloud.providers import all_providers, cumulus, metalcloud, stratus
from repro.errors import CloudError, ProvisioningError, ResourceNotFoundError, ValidationError


class TestSkuValidation:
    def test_instance_type_rejects_zero_vcpus(self):
        with pytest.raises(ValidationError):
            InstanceType("x", vcpus=0, memory_gb=1.0, monthly_price=1.0)

    def test_volume_type_rejects_zero_size(self):
        with pytest.raises(ValidationError):
            VolumeType("x", size_gb=0, iops=100, monthly_price=1.0)

    def test_gateway_type_rejects_zero_throughput(self):
        with pytest.raises(ValidationError):
            GatewayType("x", throughput_gbps=0.0, monthly_price=1.0)


class TestRateCard:
    def test_lookup_by_name(self):
        card = metalcloud().rate_card
        assert card.instance_type("bm.medium").monthly_price == 330.0
        assert card.volume_type("ssd.500").monthly_price == 170.0
        assert card.gateway_type("gw.1g").monthly_price == 190.0

    def test_unknown_sku_lists_available(self):
        with pytest.raises(CloudError, match="available"):
            metalcloud().rate_card.instance_type("nope")

    def test_addon_with_default(self):
        card = metalcloud().rate_card
        assert card.addon("raid-controller") == 30.0
        assert card.addon("unknown-addon", default=7.0) == 7.0

    def test_addon_without_default_raises(self):
        with pytest.raises(CloudError, match="known"):
            metalcloud().rate_card.addon("unknown-addon")


class TestProvisioning:
    def test_vm_lifecycle(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.medium")
        assert vm.state is ResourceState.RUNNING
        assert vm.kind is ResourceKind.VM
        provider.deprovision(vm.resource_id)
        assert provider.get(vm.resource_id).state is ResourceState.DELETED

    def test_ids_are_unique(self):
        provider = metalcloud()
        ids = {provider.provision_vm("bm.small").resource_id for _ in range(20)}
        assert len(ids) == 20

    def test_tags_stored(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.small", cluster="compute")
        assert vm.tags == {"cluster": "compute"}

    def test_region_validation(self):
        provider = metalcloud()
        with pytest.raises(ProvisioningError, match="region"):
            provider.provision_vm("bm.small", region="mars-1")

    def test_default_region_is_first(self):
        provider = metalcloud()
        assert provider.provision_vm("bm.small").region == "dal10"

    def test_capacity_enforced(self):
        provider = stratus()
        provider.capacity_per_region = 2
        provider.provision_vm("c.small")
        provider.provision_vm("c.small")
        with pytest.raises(ProvisioningError, match="capacity"):
            provider.provision_vm("c.small")

    def test_deprovision_frees_capacity(self):
        provider = stratus()
        provider.capacity_per_region = 1
        vm = provider.provision_vm("c.small")
        provider.deprovision(vm.resource_id)
        provider.provision_vm("c.small")  # no raise

    def test_double_delete_rejected(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.small")
        provider.deprovision(vm.resource_id)
        with pytest.raises(CloudError, match="already deleted"):
            provider.deprovision(vm.resource_id)

    def test_unknown_resource(self):
        with pytest.raises(ResourceNotFoundError):
            metalcloud().get("nope-1")

    def test_monthly_spend_tracks_live_resources(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.medium")
        provider.provision_volume("ssd.500")
        assert provider.monthly_spend() == pytest.approx(500.0)
        provider.deprovision(vm.resource_id)
        assert provider.monthly_spend() == pytest.approx(170.0)

    def test_list_filters(self):
        provider = metalcloud()
        provider.provision_vm("bm.small")
        volume = provider.provision_volume("ssd.250")
        provider.deprovision(volume.resource_id)
        assert len(provider.list_resources(kind=ResourceKind.VM)) == 1
        assert len(provider.list_resources(state=ResourceState.DELETED)) == 1


class TestFailureHooks:
    def test_fail_and_repair(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.small")
        provider.mark_failed(vm.resource_id)
        assert provider.get(vm.resource_id).state is ResourceState.FAILED
        provider.mark_repaired(vm.resource_id)
        assert provider.get(vm.resource_id).state is ResourceState.RUNNING

    def test_cannot_fail_deleted_resource(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.small")
        provider.deprovision(vm.resource_id)
        with pytest.raises(CloudError):
            provider.mark_failed(vm.resource_id)

    def test_cannot_repair_running_resource(self):
        provider = metalcloud()
        vm = provider.provision_vm("bm.small")
        with pytest.raises(CloudError):
            provider.mark_repaired(vm.resource_id)


class TestBuiltInProviders:
    def test_three_distinct_providers(self):
        names = {provider.name for provider in all_providers()}
        assert names == {"metalcloud", "stratus", "cumulus"}

    def test_reliability_ordering(self):
        # stratus (premium) beats metalcloud beats cumulus on every kind.
        premium, baseline, budget = stratus(), metalcloud(), cumulus()
        for kind in ("vm", "volume", "gateway"):
            assert (
                premium.reliability.triple(kind)[0]
                < baseline.reliability.triple(kind)[0]
                < budget.reliability.triple(kind)[0]
            )

    def test_price_ordering(self):
        # Mid-size compute: premium > baseline > budget.
        premium = stratus().rate_card.instance_types[1].monthly_price
        baseline = metalcloud().rate_card.instance_types[1].monthly_price
        budget = cumulus().rate_card.instance_types[1].monthly_price
        assert premium > baseline > budget

    def test_metalcloud_matches_case_study_ground_truth(self):
        from repro.workloads import case_study

        reliability = metalcloud().reliability
        assert reliability.triple("vm")[0] == case_study.COMPUTE_NODE.down_probability
        assert reliability.triple("volume")[0] == case_study.STORAGE_NODE.down_probability
        assert reliability.triple("gateway")[0] == case_study.NETWORK_NODE.down_probability

    def test_unknown_reliability_kind(self):
        with pytest.raises(CloudError, match="known"):
            metalcloud().reliability.triple("mainframe")
