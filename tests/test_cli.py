"""CLI: every subcommand runs and prints what it promises."""

from __future__ import annotations

import json

import pytest

from repro.cli.formatting import render_table
from repro.cli.main import build_parser, main
from repro.topology.serialization import system_to_json
from repro.workloads.case_study import case_study_base_system


@pytest.fixture
def topology_file(tmp_path):
    path = tmp_path / "system.json"
    path.write_text(system_to_json(case_study_base_system()))
    return path


class TestFormatting:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_render_table_empty_rows(self):
        text = render_table(("x",), [])
        assert "x" in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for args in (
            ["case-study"],
            ["evaluate", "f.json"],
            ["simulate", "f.json"],
            ["recommend"],
            ["sweep"],
            ["scenario", "ecommerce"],
            ["lint"],
        ):
            assert parser.parse_args(args).command == args[0]

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "bogus"])


class TestCommands:
    def test_case_study_prints_summary(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "savings vs as-is" in out
        assert "62" in out
        assert "clipped #8" in out

    def test_evaluate_topology_file(self, capsys, topology_file):
        assert main(["evaluate", str(topology_file)]) == 0
        out = capsys.readouterr().out
        assert "B_s" in out and "F_s" in out

    def test_simulate_topology_file(self, capsys, topology_file):
        assert main([
            "simulate", str(topology_file),
            "--replications", "5", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "simulated U_s" in out

    def test_sweep_prints_rows_per_rate(self, capsys):
        assert main(["sweep", "--rates", "0", "100"]) == 0
        out = capsys.readouterr().out
        assert "$0" in out and "$100" in out

    def test_scenario_runs(self, capsys):
        assert main(["scenario", "analytics"]) == 0
        assert "recommended" in capsys.readouterr().out

    def test_recommend_with_tiny_observation(self, capsys):
        assert main([
            "recommend", "--observe-years", "2",
            "--seed", "5", "--sla", "98", "--penalty", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "place on" in out

    def test_evaluate_bad_json_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["evaluate", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_advise_from_default_as_is(self, capsys):
        assert main(["advise"]) == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out
        assert "compute" in out

    def test_advise_with_migration_cost(self, capsys):
        assert main(["advise", "--migration-cost", "120000"]) == 0
        assert "stay put" in capsys.readouterr().out

    def test_advise_unknown_technology_is_clean_error(self, capsys):
        assert main(["advise", "--current", "warp", "raid-1", "none"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compliance_settles_months(self, capsys):
        assert main([
            "compliance", "--option", "3", "--years", "2", "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "Jensen gap" in out
        assert "24 settled months" in out

    def test_importance_default_case_study(self, capsys):
        assert main(["importance"]) == 0
        out = capsys.readouterr().out
        assert "priority: protect 'storage'" in out

    def test_importance_from_file(self, capsys, topology_file):
        assert main(["importance", str(topology_file)]) == 0
        assert "Birnbaum" in capsys.readouterr().out

    def test_ingest_trace_file_locally(self, capsys, tmp_path):
        from repro.cloud.faults import FaultInjector
        from repro.cloud.providers import metalcloud
        from repro.server.ingest import ExposureRecord, records_to_jsonl
        from repro.units import MINUTES_PER_YEAR

        provider = metalcloud()
        resources = [provider.provision_vm("bm.small") for _ in range(5)]
        records = [ExposureRecord("metalcloud", "vm", 5, 2 * MINUTES_PER_YEAR)]
        records += FaultInjector(provider, seed=4).inject(
            resources, horizon_minutes=2 * MINUTES_PER_YEAR
        )
        trace = tmp_path / "trace.jsonl"
        trace.write_text(records_to_jsonl(records))

        assert main(["ingest", str(trace), "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert f"ingested {len(records)}/{len(records)}" in out
        assert "metalcloud/vm" in out

    def test_ingest_to_running_server(self, capsys, tmp_path):
        from repro.broker.service import BrokerService
        from repro.cloud.providers import all_providers
        from repro.server import start_in_thread
        from repro.server.ingest import ExposureRecord, records_to_jsonl

        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            records_to_jsonl([ExposureRecord("metalcloud", "vm", 2, 1000.0)])
        )
        broker = BrokerService(all_providers())
        with start_in_thread(broker, merge_interval=None) as handle:
            assert main(["ingest", str(trace), "--url", handle.url]) == 0
            assert broker.telemetry.exposure_years("metalcloud", "vm") > 0
        out = capsys.readouterr().out
        assert "routed 1 record(s)" in out

    def test_ingest_bad_trace_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n")
        assert main(["ingest", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cli_backend_choices_match_server(self):
        from repro.cli.main import INGEST_BACKENDS as cli_backends
        from repro.server.ingest import INGEST_BACKENDS as server_backends

        assert cli_backends == server_backends

    def test_serve_parser_accepts_server_knobs(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--shards", "2", "--ingest-backend",
             "process", "--merge-interval", "0.2"]
        )
        assert args.command == "serve"
        assert args.shards == 2
        assert args.ingest_backend == "process"

    def test_pareto_lists_frontier(self, capsys):
        assert main(["pareto"]) == 0
        out = capsys.readouterr().out
        assert "#1 no HA" in out
        assert "#8" in out
        assert "#4" not in out  # dominated option stays off the frontier
