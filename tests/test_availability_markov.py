"""Markov cluster model: exactness vs Eq. 2 and repair-crew effects."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.cluster_math import cluster_up_probability, up_probability
from repro.availability.markov import (
    MarkovClusterModel,
    crew_size_penalty,
    markov_cluster_up_probability,
)
from repro.errors import ValidationError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


@pytest.fixture
def cluster():
    return ClusterSpec(
        "c", Layer.COMPUTE, NodeSpec("h", 0.01, 6.0), total_nodes=4,
        standby_tolerance=1, failover_minutes=5.0,
    )


class TestSteadyState:
    def test_distribution_sums_to_one(self, cluster):
        model = MarkovClusterModel.from_cluster(cluster)
        assert sum(model.steady_state()) == pytest.approx(1.0)

    def test_unlimited_crew_equals_binomial(self, cluster):
        """c >= K reproduces Eq. 2's inner sum exactly."""
        assert markov_cluster_up_probability(cluster) == pytest.approx(
            cluster_up_probability(cluster), rel=1e-12
        )

    def test_unlimited_crew_matches_binomial_pointwise(self, cluster):
        import math

        model = MarkovClusterModel.from_cluster(cluster)
        pi = model.steady_state()
        p = cluster.node.down_probability
        for j, probability in enumerate(pi):
            binomial = (
                math.comb(cluster.total_nodes, j)
                * p**j
                * (1 - p) ** (cluster.total_nodes - j)
            )
            assert probability == pytest.approx(binomial, rel=1e-9)

    def test_single_repair_crew_is_worse(self, cluster):
        assert markov_cluster_up_probability(cluster, 1) < (
            markov_cluster_up_probability(cluster)
        )

    def test_crew_monotonicity(self, cluster):
        values = [
            markov_cluster_up_probability(cluster, crew)
            for crew in (1, 2, 3, 4)
        ]
        assert values == sorted(values)

    def test_crew_beyond_k_changes_nothing(self, cluster):
        assert markov_cluster_up_probability(cluster, 4) == pytest.approx(
            markov_cluster_up_probability(cluster, 10)
        )

    def test_never_failing_node(self):
        cluster = ClusterSpec(
            "c", Layer.COMPUTE, NodeSpec("h", 0.0, 0.0), total_nodes=3
        )
        assert markov_cluster_up_probability(cluster, 1) == 1.0

    def test_expected_down_nodes_scales_with_p(self):
        def expected(p):
            cluster = ClusterSpec(
                "c", Layer.COMPUTE, NodeSpec("h", p, 6.0), total_nodes=4,
                standby_tolerance=1, failover_minutes=5.0,
            )
            return MarkovClusterModel.from_cluster(cluster).expected_down_nodes()

        assert expected(0.05) > expected(0.005)

    def test_expected_down_nodes_binomial_mean(self, cluster):
        # Unlimited crew: E[#down] = K * P.
        model = MarkovClusterModel.from_cluster(cluster)
        assert model.expected_down_nodes() == pytest.approx(4 * 0.01, rel=1e-9)


class TestValidation:
    def test_rejects_bad_tolerance(self, cluster):
        model = MarkovClusterModel.from_cluster(cluster)
        with pytest.raises(ValidationError):
            model.up_probability(4)

    def test_rejects_zero_crew(self):
        with pytest.raises(ValidationError):
            MarkovClusterModel(4, 0.001, 0.1, repair_crew=0)

    def test_rejects_zero_repair_rate(self):
        with pytest.raises(ValidationError):
            MarkovClusterModel(4, 0.001, 0.0, repair_crew=1)


class TestCrewPenalty:
    def test_penalty_non_negative(self, cluster):
        for crew in (1, 2, 3):
            assert crew_size_penalty(cluster, crew) >= 0.0

    def test_penalty_vanishes_with_full_crew(self, cluster):
        assert crew_size_penalty(cluster, 4) == pytest.approx(0.0, abs=1e-12)

    def test_penalty_decreasing_in_crew(self, cluster):
        penalties = [crew_size_penalty(cluster, crew) for crew in (1, 2, 3)]
        assert penalties == sorted(penalties, reverse=True)


class TestMarkovBinomialEquivalenceProperty:
    @given(
        total=st.integers(min_value=1, max_value=8),
        p=st.floats(min_value=1e-5, max_value=0.4),
        failures=st.floats(min_value=0.5, max_value=24.0),
    )
    @settings(max_examples=150)
    def test_unlimited_crew_equals_binomial_everywhere(self, total, p, failures):
        cluster = ClusterSpec(
            "c", Layer.COMPUTE, NodeSpec("h", p, failures),
            total_nodes=total,
        )
        for tolerance in range(total):
            model = MarkovClusterModel.from_cluster(cluster)
            assert model.up_probability(tolerance) == pytest.approx(
                up_probability(total, tolerance, p), rel=1e-9
            )

    @given(
        total=st.integers(min_value=2, max_value=8),
        p=st.floats(min_value=1e-4, max_value=0.4),
        crew=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_finite_crew_never_beats_unlimited(self, total, p, crew):
        cluster = ClusterSpec(
            "c", Layer.COMPUTE, NodeSpec("h", p, 6.0), total_nodes=total,
            standby_tolerance=1, failover_minutes=1.0,
        )
        assert markov_cluster_up_probability(cluster, crew) <= (
            markov_cluster_up_probability(cluster) + 1e-12
        )
