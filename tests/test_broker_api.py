"""Broker API v2: envelopes, sessions, jobs, streaming, engine cache."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.broker.api import (
    BrokerSession,
    EngineCache,
    EngineKey,
    contract_fingerprint,
    rate_card_fingerprint,
    system_signature,
)
from repro.broker.envelope import (
    EVENT_KINDS,
    ErrorEnvelope,
    OptionSummary,
    ProgressEvent,
    ProviderReport,
    RecommendEnvelope,
    ReportEnvelope,
    contract_from_dict,
    contract_to_dict,
    penalty_from_dict,
    penalty_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.provider import CloudProvider
from repro.cloud.providers import all_providers, metalcloud
from repro.errors import (
    BrokerError,
    InsufficientTelemetryError,
    ReproError,
    ValidationError,
)
from repro.optimizer.engine import EvaluationEngine
from repro.sla.contract import Contract
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    ServiceCreditPenalty,
    TieredPenalty,
)
from repro.workloads.case_study import case_study_problem


@pytest.fixture(scope="module")
def observed_broker() -> BrokerService:
    """A broker that has watched all three providers for 3 synthetic years."""
    broker = BrokerService(all_providers())
    broker.observe_all(years=3.0, seed=23)
    return broker


@pytest.fixture
def contract() -> Contract:
    return Contract.linear(98.0, 100.0)


@pytest.fixture
def session(observed_broker) -> BrokerSession:
    with observed_broker.session() as active:
        yield active


class TestEnvelopeRoundTrip:
    @pytest.mark.parametrize(
        "clause",
        [
            NoPenalty(),
            LinearPenalty(250.0),
            TieredPenalty(((2.0, 100.0), (8.0, 250.0))),
            CappedPenalty(inner=LinearPenalty(100.0), monthly_cap=4000.0),
            ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25))),
        ],
    )
    def test_penalty_clauses_round_trip(self, clause):
        assert penalty_from_dict(penalty_to_dict(clause)) == clause

    def test_penalty_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="penalty kind"):
            penalty_from_dict({"kind": "exotic"})

    def test_contract_round_trip(self, contract):
        assert contract_from_dict(contract_to_dict(contract)) == contract

    def test_request_round_trip(self, contract):
        request = three_tier_request(
            contract,
            compute_nodes=4,
            providers=("metalcloud", "stratus"),
            strategy="brute-force",
            engine="incremental",
            parallel=True,
            extended_catalog=True,
            metadata={"customer": "acme"},
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_envelope_json_round_trip(self, contract):
        envelope = RecommendEnvelope(
            request=three_tier_request(contract), request_id="req-7"
        )
        assert RecommendEnvelope.from_json(envelope.to_json()) == envelope

    def test_envelope_embeds_version_and_kind(self, contract):
        payload = RecommendEnvelope(three_tier_request(contract)).to_dict()
        assert payload["schema_version"] == 2
        assert payload["kind"] == "recommend-request"

    def test_envelope_rejects_future_version(self, contract):
        payload = RecommendEnvelope(three_tier_request(contract)).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema_version"):
            RecommendEnvelope.from_dict(payload)

    def test_envelope_rejects_unknown_keys(self, contract):
        payload = RecommendEnvelope(three_tier_request(contract)).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValidationError, match="unknown"):
            RecommendEnvelope.from_dict(payload)

    def test_request_validation_still_applies(self, contract):
        payload = RecommendEnvelope(three_tier_request(contract)).to_dict()
        payload["request"]["strategy"] = "quantum"
        with pytest.raises(ValidationError, match="strategy"):
            RecommendEnvelope.from_dict(payload)

    def test_report_envelope_round_trip(self, session, contract):
        report = session.recommend(three_tier_request(contract))
        envelope = ReportEnvelope.from_report(report, request_id="req-1")
        restored = ReportEnvelope.from_json(envelope.to_json())
        assert restored == envelope
        assert restored.best.provider_name == report.best.provider_name
        assert restored.best.monthly_total == report.best.monthly_total

    def test_report_envelope_unknown_provider(self, session, contract):
        report = session.recommend(three_tier_request(contract))
        envelope = ReportEnvelope.from_report(report)
        with pytest.raises(BrokerError, match="unknown provider"):
            envelope.for_provider("nimbus")

    def test_report_envelope_is_json_safe(self, session, contract):
        report = session.recommend(three_tier_request(contract))
        payload = ReportEnvelope.from_report(report).to_dict()
        json.dumps(payload)  # must not raise

    def test_progress_event_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="event kind"):
            ProgressEvent("teleported")


class TestEngineCacheUnit:
    @staticmethod
    def _key(tag: str) -> EngineKey:
        return EngineKey(
            provider="p", base_system=tag, contract="c", rate_card="r",
            variant=(),
        )

    @staticmethod
    def _engine() -> EvaluationEngine:
        return EvaluationEngine(case_study_problem())

    def test_rejects_zero_capacity(self):
        with pytest.raises(BrokerError, match="capacity"):
            EngineCache(capacity=0)

    def test_hit_and_miss_accounting(self):
        cache = EngineCache(capacity=4)
        key = self._key("a")
        first = cache.entry(key, self._engine)
        again = cache.entry(key, self._engine)
        assert again.engine is first.engine
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.requests == 2
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = EngineCache(capacity=2)
        a, b, c = self._key("a"), self._key("b"), self._key("c")
        cache.entry(a, self._engine)
        cache.entry(b, self._engine)
        cache.entry(a, self._engine)  # refresh a: b is now least recent
        cache.entry(c, self._engine)  # evicts b
        assert cache.stats.evictions == 1
        assert b not in cache
        assert cache.keys() == (a, c)
        # b was evicted, so asking for it again is a rebuild (miss).
        cache.entry(b, self._engine)
        assert cache.stats.misses == 4

    def test_clear_drops_engines_keeps_stats(self):
        cache = EngineCache(capacity=2)
        cache.entry(self._key("a"), self._engine)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_clear_closes_dropped_engine_pools(self):
        from repro.optimizer.pools import PoolRegistry

        registry = PoolRegistry()
        cache = EngineCache(capacity=2)

        def build() -> EvaluationEngine:
            return EvaluationEngine(
                case_study_problem(), backend="thread",
                max_workers=1, pool_registry=registry,
            )

        entry = cache.entry(self._key("a"), build)
        list(entry.engine.evaluate_all())
        assert registry.active_pools() == (("thread", 1),)
        cache.clear()
        assert entry.closed
        assert registry.active_pools() == ()


class TestEvictionLifecycle:
    """LRU eviction must release engines' worker pools, not leak them."""

    @staticmethod
    def _key(tag: str) -> EngineKey:
        return EngineKey(
            provider="p", base_system=tag, contract="c", rate_card="r",
            variant=(),
        )

    @staticmethod
    def _build(registry, backend: str = "process"):
        def build() -> EvaluationEngine:
            return EvaluationEngine(
                case_study_problem(), backend=backend,
                max_workers=1, pool_registry=registry, chunk_size=4,
            )
        return build

    def test_eviction_closes_the_evicted_engines_pool(self):
        from repro.optimizer.pools import PoolRegistry

        registry = PoolRegistry()
        cache = EngineCache(capacity=1)
        entry_a = cache.entry(self._key("a"), self._build(registry))
        list(entry_a.engine.evaluate_all())  # spin the worker pool up
        assert registry.holders("process", 1) == 1
        # Inserting a second key evicts (and must close) the first.
        cache.entry(self._key("b"), self._build(registry))
        assert entry_a.evicted and entry_a.closed
        assert cache.stats.evictions == 1
        assert cache.stats.evicted_engines_closed == 1
        assert cache.stats.deferred_engine_closes == 0
        assert entry_a.engine._backend_impl._pool is None
        assert registry.active_pools() == ()  # last holder released
        cache.clear()

    def test_eviction_defers_close_to_in_flight_holder(self):
        from repro.optimizer.pools import PoolRegistry

        registry = PoolRegistry()
        cache = EngineCache(capacity=1)
        entry_a = cache.entry(self._key("a"), self._build(registry, "thread"))
        list(entry_a.engine.evaluate_all())
        # Simulate an in-flight request: the entry's lock is held while
        # another request's miss evicts this entry.
        assert entry_a.lock.acquire(blocking=False)
        try:
            cache.entry(self._key("b"), self._build(registry, "thread"))
            assert entry_a.evicted and not entry_a.closed
            assert cache.stats.deferred_engine_closes == 1
            assert cache.stats.evicted_engines_closed == 0
            # The engine keeps serving the in-flight request meanwhile.
            assert registry.holders("thread", 1) == 1
        finally:
            entry_a.lock.release()
        # The holder completes the close on its way out.
        cache.finish(entry_a)
        assert entry_a.closed
        assert cache.stats.evicted_engines_closed == 1
        assert entry_a.engine._backend_impl._pool is None
        cache.clear()

    def test_finish_recloses_an_engine_revived_after_eviction(self):
        from repro.optimizer.pools import PoolRegistry

        registry = PoolRegistry()
        cache = EngineCache(capacity=1)
        entry_a = cache.entry(self._key("a"), self._build(registry, "thread"))
        list(entry_a.engine.evaluate_all())
        cache.entry(self._key("b"), self._build(registry, "thread"))
        assert entry_a.closed  # eviction closed it while unheld
        # A holder that resolved the entry before eviction revives the
        # closed engine just by evaluating on it (lazy re-acquire)...
        list(entry_a.engine.evaluate_all())
        assert entry_a.engine._backend_impl._pool is not None
        assert registry.holders("thread", 1) == 1
        # ...so its finish() must re-close, or the lease leaks forever.
        cache.finish(entry_a)
        assert entry_a.engine._backend_impl._pool is None
        assert registry.active_pools() == ()
        # The first close was already counted; re-closes are not.
        assert cache.stats.evicted_engines_closed == 1
        cache.clear()

    def test_session_eviction_closes_engines_between_requests(
        self, observed_broker
    ):
        with observed_broker.session(
            cache_capacity=1, backend="thread"
        ) as session:
            first = three_tier_request(
                Contract.linear(98.0, 100.0),
                strategy="brute-force",
                providers=("metalcloud",),
            )
            second = three_tier_request(
                Contract.linear(99.0, 100.0),
                strategy="brute-force",
                providers=("metalcloud",),
            )
            session.recommend(first)
            survivor = session.engine_cache.engines()
            assert len(survivor) == 1
            session.recommend(second)
            stats = session.engine_cache.stats
            assert stats.evictions == 1
            assert stats.evicted_engines_closed == 1
            # The evicted engine's pool lease is gone; the survivor's
            # engine still serves warm repeats.
            assert survivor[0]._backend_impl._pool is None
            repeat = session.recommend(second)
            assert repeat.recommendations

    def test_stats_serialization(self):
        stats = EngineCache(capacity=2).stats
        assert stats.to_dict() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "evicted_engines_closed": 0,
            "deferred_engine_closes": 0,
        }
        assert "hit rate" in stats.describe()


class TestEngineKeying:
    def test_contract_changes_key(self, observed_broker, contract):
        cache = EngineCache()
        with observed_broker.session(engine_cache=cache) as session:
            session.recommend(three_tier_request(contract))
            assert len(cache) == 3  # one engine per provider
            session.recommend(
                three_tier_request(Contract.linear(99.0, 100.0))
            )
            assert len(cache) == 6
            assert cache.stats.hits == 0

    def test_rate_card_changes_key(self, contract):
        base = metalcloud()
        pricier_card = dataclasses.replace(
            base.rate_card,
            ha_addons={**base.rate_card.ha_addons, "raid-controller": 99.0},
        )
        pricier = CloudProvider(
            name=base.name,
            regions=base.regions,
            rate_card=pricier_card,
            reliability=base.reliability,
        )
        shared = EngineCache()
        reports = {}
        for provider in (base, pricier):
            broker = BrokerService((provider,))
            broker.observe_provider("metalcloud", years=2.0, seed=5)
            with broker.session(engine_cache=shared) as session:
                reports[id(provider)] = session.recommend(
                    three_tier_request(contract)
                )
        # Same provider name, same telemetry, different rate card: the
        # fingerprints must diverge, so both requests were cache misses.
        assert shared.stats.misses == 2
        assert shared.stats.hits == 0
        assert len(shared) == 2

    def test_identical_inputs_share_key(self, contract):
        broker_a = BrokerService((metalcloud(),))
        broker_a.observe_provider("metalcloud", years=2.0, seed=5)
        broker_b = BrokerService((metalcloud(),))
        broker_b.observe_provider("metalcloud", years=2.0, seed=5)
        shared = EngineCache()
        with broker_a.session(engine_cache=shared) as session_a:
            session_a.recommend(three_tier_request(contract))
        with broker_b.session(engine_cache=shared) as session_b:
            session_b.recommend(three_tier_request(contract))
        assert shared.stats.misses == 1
        assert shared.stats.hits == 1

    def test_fingerprints_are_stable_hex(self, observed_broker, contract):
        provider = observed_broker.provider("metalcloud")
        base = observed_broker.materialize_topology(
            three_tier_request(contract), provider
        )
        for fingerprint in (
            system_signature(base),
            contract_fingerprint(contract),
            rate_card_fingerprint(provider.rate_card),
        ):
            assert len(fingerprint) == 64
            int(fingerprint, 16)  # hex digest


class TestWarmSession:
    def test_repeat_request_computes_no_new_cluster_terms(
        self, observed_broker, contract
    ):
        """Acceptance: a warm session re-serving a request does zero new
        per-(cluster, technology) term computations."""
        with observed_broker.session() as session:
            request = three_tier_request(contract)
            cold = session.recommend(request)
            terms_cold = session.engine_cache.cluster_term_computations()
            misses_cold = session.engine_cache.stats.misses
            warm = session.recommend(request)
            assert (
                session.engine_cache.cluster_term_computations() == terms_cold
            )
            assert session.engine_cache.stats.misses == misses_cold
            assert session.engine_cache.stats.hits == len(warm.recommendations)
            # Bit-identical, not approximately equal.
            for cold_rec, warm_rec in zip(
                cold.recommendations, warm.recommendations
            ):
                assert cold_rec.provider_name == warm_rec.provider_name
                assert [o.tco.total for o in cold_rec.result.options] == [
                    o.tco.total for o in warm_rec.result.options
                ]
            assert cold.describe() == warm.describe()

    def test_warm_request_is_pure_cache_hits(self, observed_broker, contract):
        with observed_broker.session() as session:
            request = three_tier_request(contract)
            session.recommend(request)
            before = {
                id(engine): engine.stats.snapshot()
                for engine in session.engine_cache.engines()
            }
            session.recommend(request)
            for engine in session.engine_cache.engines():
                stats, prior = engine.stats, before[id(engine)]
                assert stats.incremental_combines == prior.incremental_combines
                assert stats.topology_evaluations == 0
                assert stats.cache_hits > prior.cache_hits

    def test_engine_stats_are_snapshots(self, observed_broker, contract):
        with observed_broker.session() as session:
            request = three_tier_request(contract)
            first = session.recommend(request)
            frozen = first.for_provider("metalcloud").engine_stats
            evaluations_then = frozen.candidate_evaluations
            session.recommend(request)
            assert frozen.candidate_evaluations == evaluations_then

    def test_engine_stats_are_per_request_deltas(
        self, observed_broker, contract
    ):
        """Warm reports audit only their own work, not the engine's
        lifetime counters (v1 semantics)."""
        with observed_broker.session() as session:
            request = three_tier_request(contract)
            cold = session.recommend(request).for_provider("metalcloud")
            warm = session.recommend(request).for_provider("metalcloud")
            # Cold request owns the construction-time n*k precompute...
            assert cold.engine_stats.cluster_term_computations == 6
            assert cold.engine_stats.incremental_combines > 0
            # ...the warm repeat did zero fresh model work.
            assert warm.engine_stats.cluster_term_computations == 0
            assert warm.engine_stats.incremental_combines == 0
            assert (
                warm.engine_stats.cache_hits
                == warm.engine_stats.candidate_evaluations
                == cold.engine_stats.candidate_evaluations
            )

    def test_custom_penalty_clause_supported(self, observed_broker):
        """Extending the PenaltyClause ABC must not break sessions —
        unknown clauses fingerprint via repr instead of the wire form."""
        import dataclasses as dc

        from repro.sla.penalty import PenaltyClause
        from repro.sla.sla import UptimeSLA

        @dc.dataclass(frozen=True)
        class QuadraticPenalty(PenaltyClause):
            rate: float

            def monthly_penalty(self, slippage_hours: float) -> float:
                self._check_slippage(slippage_hours)
                return self.rate * slippage_hours**2

            def describe(self) -> str:
                return f"${self.rate:,.2f}/h^2"

        exotic = Contract(sla=UptimeSLA(98.0), penalty=QuadraticPenalty(10.0))
        with observed_broker.session() as session:
            first = session.recommend(three_tier_request(exotic))
            terms = session.engine_cache.cluster_term_computations()
            second = session.recommend(three_tier_request(exotic))
            # The repr fallback still keys deterministically: warm hit.
            assert session.engine_cache.cluster_term_computations() == terms
            assert first.describe() == second.describe()


class TestBatchAndJobs:
    def test_recommend_many_matches_sequential(self, observed_broker):
        """Acceptance: >= 8 batched requests, bit-identical to sequential."""
        requests = [
            three_tier_request(Contract.linear(sla, penalty), compute_nodes=nodes)
            for sla, penalty, nodes in [
                (98.0, 100.0, 3),
                (98.0, 100.0, 3),  # duplicate: exercises warm engines
                (99.0, 100.0, 3),
                (98.0, 250.0, 3),
                (98.0, 100.0, 4),
                (99.5, 500.0, 3),
                (98.0, 0.0, 3),
                (98.0, 100.0, 2),
            ]
        ]
        with observed_broker.session(max_workers=4) as batch_session:
            batched = batch_session.recommend_many(requests)
        with observed_broker.session() as sequential_session:
            sequential = tuple(
                sequential_session.recommend(request) for request in requests
            )
        assert len(batched) == len(sequential) == 8
        for batch_report, seq_report in zip(batched, sequential):
            assert batch_report.describe() == seq_report.describe()
            for batch_rec, seq_rec in zip(
                batch_report.recommendations, seq_report.recommendations
            ):
                assert [o.tco.total for o in batch_rec.result.options] == [
                    o.tco.total for o in seq_rec.result.options
                ]

    def test_job_lifecycle(self, observed_broker, contract):
        with observed_broker.session() as session:
            job_id = session.submit(three_tier_request(contract))
            assert job_id == "job-000001"
            report = session.result(job_id, timeout=60.0)
            assert session.poll(job_id) == "done"
            assert report.best.provider_name in {
                "metalcloud", "stratus", "cumulus",
            }

    def test_submit_envelope_keeps_request_id(self, observed_broker, contract):
        with observed_broker.session() as session:
            envelope = RecommendEnvelope(
                three_tier_request(contract), request_id="customer-42"
            )
            job_id = session.submit(envelope)
            report_envelope = session.result_envelope(job_id, timeout=60.0)
            assert report_envelope.request_id == "customer-42"

    def test_failed_job_reraises(self, contract):
        broker = BrokerService((metalcloud(),))  # never observed
        with broker.session() as session:
            job_id = session.submit(three_tier_request(contract))
            with pytest.raises(InsufficientTelemetryError):
                session.result(job_id, timeout=60.0)
            assert session.poll(job_id) == "failed"

    def test_unknown_job_id(self, session):
        with pytest.raises(BrokerError, match="unknown job"):
            session.poll("job-999999")

    def test_closed_session_rejects_submissions(self, observed_broker, contract):
        session = observed_broker.session()
        session.close()
        with pytest.raises(BrokerError, match="closed"):
            session.submit(three_tier_request(contract))


class TestStreaming:
    def test_event_sequence_and_distillation(self, observed_broker, contract):
        with observed_broker.session() as session:
            request = three_tier_request(
                contract, providers=("metalcloud",), strategy="brute-force"
            )
            events = list(session.stream(request, progress_every=2))
        kinds = [event.kind for event in events]
        assert kinds[0] == "accepted"
        assert kinds[1] == "provider-started"
        assert "progress" in kinds
        assert kinds[-2] == "provider-completed"
        assert kinds[-1] == "completed"
        report_payload = events[-1].detail["report"]
        restored = ReportEnvelope.from_dict(report_payload)
        assert restored.best.provider_name == "metalcloud"

    def test_streaming_never_materializes_topologies(
        self, observed_broker, contract
    ):
        """Distilled sweeps keep option tables and topologies unbuilt."""
        cache = EngineCache()
        with observed_broker.session(engine_cache=cache) as session:
            request = three_tier_request(
                contract, providers=("metalcloud",), strategy="brute-force"
            )
            list(session.stream(request))
        (engine,) = cache.engines()
        # The engine evaluated the whole space but no candidate was ever
        # asked for its SystemTopology.
        assert engine.stats.incremental_combines == engine.space.size
        for option in engine._results.values():
            assert not option.system_is_materialized

    def test_abandoned_stream_does_not_hold_engine_lock(
        self, observed_broker, contract
    ):
        """A partially-consumed stream generator must not block other
        requests sharing its cached engine (deadlock regression)."""
        with observed_broker.session() as session:
            request = three_tier_request(
                contract, providers=("metalcloud",), strategy="brute-force"
            )
            stream = session.stream(request, progress_every=1)
            for event in stream:
                if event.kind == "progress":
                    break  # abandon mid-sweep, generator still alive
            job_id = session.submit(request)
            report = session.result(job_id, timeout=10.0)
            assert report.best.provider_name == "metalcloud"
            stream.close()

    def test_streaming_skips_unobserved_provider(self, contract):
        broker = BrokerService((metalcloud(),))
        with broker.session() as session:
            events = list(session.stream(three_tier_request(contract)))
        kinds = [event.kind for event in events]
        assert "provider-skipped" in kinds
        assert kinds[-1] == "failed"


class TestSessionMetrics:
    def test_metrics_exposes_cache_stats_without_internals(
        self, session, contract
    ):
        request = three_tier_request(contract)
        session.recommend(request)
        session.recommend(request)
        metrics = session.metrics()
        assert metrics["engine_cache"] == session.engine_cache.stats.to_dict()
        assert set(metrics["engine_cache"]) == {
            "hits",
            "misses",
            "evictions",
            "evicted_engines_closed",
            "deferred_engine_closes",
        }
        assert metrics["engine_cache"]["misses"] >= 3  # one engine/provider
        assert metrics["engine_cache"]["hits"] >= 3  # warm repeat
        assert metrics["engines_cached"] == len(session.engine_cache)
        assert metrics["cluster_term_computations"] > 0

    def test_metrics_counts_jobs_by_status(self, observed_broker, contract):
        with observed_broker.session() as session:
            fresh = session.metrics()
            assert fresh["jobs"] == {
                "pending": 0, "running": 0, "done": 0, "failed": 0,
            }
            assert fresh["job_queue_depth"] == 0
            job_id = session.submit(three_tier_request(contract))
            session.result(job_id)
            bad = session.submit(
                three_tier_request(contract, providers=("nimbus-9",))
            )
            with pytest.raises(BrokerError):
                session.result(bad)
            done = session.metrics()
        assert done["jobs"]["done"] == 1
        assert done["jobs"]["failed"] == 1
        assert done["job_queue_depth"] == 0

    def test_metrics_is_json_safe(self, session):
        import json

        json.dumps(session.metrics())


class TestJobRetention:
    def test_retrieved_jobs_evicted_oldest_first(self, observed_broker, contract):
        request = three_tier_request(contract)
        with observed_broker.session(max_finished_jobs=2) as session:
            ids = []
            for _ in range(4):
                job_id = session.submit(request)
                session.result(job_id)  # retrieve before the next submit
                ids.append(job_id)
            # Submitting the 4th evicted the oldest retrieved records.
            kept = [job.job_id for job in session.jobs()]
            assert ids[-1] in kept
            assert len(kept) <= 3  # cap + the just-submitted job
            with pytest.raises(BrokerError, match="unknown job"):
                session.poll(ids[0])
            # The most recent finished job is still queryable.
            assert session.poll(ids[-1]) == "done"

    def test_unretrieved_results_survive_any_backlog(
        self, observed_broker, contract
    ):
        # A batch larger than the cap stays collectable: jobs finished
        # but never handed out are not eviction candidates.
        request = three_tier_request(contract)
        with observed_broker.session(max_finished_jobs=1) as session:
            job_ids = [session.submit(request) for _ in range(6)]
            reports = [session.result(job_id) for job_id in job_ids]
        assert len(reports) == 6  # every submission completed and returned

    def test_recommend_many_unaffected_by_small_cap(
        self, observed_broker, contract
    ):
        request = three_tier_request(contract)
        with observed_broker.session(max_finished_jobs=1) as session:
            reports = session.recommend_many([request] * 5)
        assert len(reports) == 5

    def test_max_finished_jobs_validated(self, observed_broker):
        with pytest.raises(BrokerError, match="max_finished_jobs"):
            observed_broker.session(max_finished_jobs=0).__enter__()


class TestCompatibilityShim:
    def test_recommend_warns_deprecation(self, observed_broker, contract):
        with pytest.warns(DeprecationWarning, match="BrokerSession"):
            observed_broker.recommend(three_tier_request(contract))

    def test_shim_matches_session_results(self, observed_broker, contract):
        request = three_tier_request(contract)
        with pytest.warns(DeprecationWarning):
            shimmed = observed_broker.recommend(request)
        with observed_broker.session() as session:
            direct = session.recommend(request)
        assert shimmed.describe() == direct.describe()

    def test_unobserved_broker_still_raises(self, contract):
        broker = BrokerService((metalcloud(),))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(InsufficientTelemetryError):
                broker.recommend(three_tier_request(contract))


class TestBackendSwitch:
    """Engine-cache x evaluation-backend interaction.

    The backend is where the float math runs, never what it computes, so
    it is excluded from :class:`EngineKey` — switching a warm session to
    a different backend must hit the cached engines (rebinding them in
    place) and do zero new cluster-term computations.
    """

    def test_backend_travels_in_request_envelopes(self, contract):
        request = three_tier_request(
            contract, strategy="brute-force", backend="process"
        )
        assert request_from_dict(request_to_dict(request)) == request
        envelope = RecommendEnvelope(request=request)
        assert RecommendEnvelope.from_json(envelope.to_json()) == envelope

    def test_invalid_backend_rejected_at_request(self, contract):
        with pytest.raises(ValidationError, match="backend"):
            three_tier_request(contract, backend="quantum")

    @pytest.mark.parametrize("backend", ["process", "vector"])
    def test_term_table_backend_with_direct_engine_rejected_at_request(
        self, contract, backend
    ):
        # Fails at the request boundary like every other bad shape,
        # not deep inside a job as an engine error.
        with pytest.raises(ValidationError, match="incremental"):
            three_tier_request(contract, engine="direct", backend=backend)

    def test_warm_cache_survives_backend_switch(self, observed_broker, contract):
        """Acceptance: serving the same request on a different backend is
        a cache hit and computes no new cluster terms."""
        request = three_tier_request(
            contract, strategy="brute-force", backend="serial"
        )
        with observed_broker.session() as session:
            cold = session.recommend(request)
            stats = session.engine_cache.stats
            misses_cold, hits_cold = stats.misses, stats.hits
            terms_cold = session.engine_cache.cluster_term_computations()
            for backend in ("thread", "process", "vector", "serial"):
                switched = session.recommend(
                    dataclasses.replace(request, backend=backend)
                )
                # EngineCacheStats: pure hits, zero new engines/terms.
                assert stats.misses == misses_cold, backend
                assert (
                    session.engine_cache.cluster_term_computations()
                    == terms_cold
                ), backend
                for engine in session.engine_cache.engines():
                    assert engine.backend == backend
                # Bit-identical reports either way.
                for cold_rec, warm_rec in zip(
                    cold.recommendations, switched.recommendations
                ):
                    assert [o.tco.total for o in cold_rec.result.options] == [
                        o.tco.total for o in warm_rec.result.options
                    ]
            assert stats.hits == hits_cold + 4 * len(cold.recommendations)

    def test_warm_switch_does_no_new_combines(self, observed_broker, contract):
        request = three_tier_request(
            contract, strategy="brute-force", backend="serial"
        )
        with observed_broker.session() as session:
            session.recommend(request)
            before = {
                id(engine): engine.stats.snapshot()
                for engine in session.engine_cache.engines()
            }
            warm = session.recommend(
                dataclasses.replace(request, backend="process")
            ).for_provider("metalcloud")
            assert warm.engine_stats.cluster_term_computations == 0
            assert warm.engine_stats.incremental_combines == 0
            for engine in session.engine_cache.engines():
                prior = before[id(engine)]
                assert (
                    engine.stats.incremental_combines
                    == prior.incremental_combines
                )

    def test_session_default_backend_applies(self, observed_broker, contract):
        with observed_broker.session(backend="thread") as session:
            request = three_tier_request(contract, strategy="brute-force")
            session.recommend(request)
            assert all(
                engine.backend == "thread"
                for engine in session.engine_cache.engines()
            )

    def test_request_backend_beats_session_default(
        self, observed_broker, contract
    ):
        with observed_broker.session(backend="thread") as session:
            request = three_tier_request(
                contract, strategy="brute-force", backend="serial"
            )
            session.recommend(request)
            assert all(
                engine.backend == "serial"
                for engine in session.engine_cache.engines()
            )

    def test_session_rejects_unknown_backend(self, observed_broker):
        with pytest.raises(ReproError, match="backend"):
            observed_broker.session(backend="quantum")


class TestTtlEviction:
    """Age-based reclaim of finished-but-never-retrieved jobs.

    The count-based policy only evicts *retrieved* jobs, so a
    fire-and-forget submitter used to grow the table forever (the
    ROADMAP leak); ``finished_job_ttl`` reclaims those too once they
    age out, and both eviction paths are visible in ``metrics()``.
    """

    @staticmethod
    def _fake_clock(session):
        now = [0.0]
        session._clock = lambda: now[0]
        return now

    def test_ttl_reclaims_fire_and_forget_jobs(self, observed_broker, contract):
        request = three_tier_request(contract)
        with observed_broker.session(finished_job_ttl=60.0) as session:
            now = self._fake_clock(session)
            abandoned = session.submit(request)
            session.job(abandoned).done.wait(timeout=30.0)
            # Never retrieved: within the TTL it survives submissions...
            session.result(session.submit(request))
            assert session.poll(abandoned) == "done"
            # ...and past the TTL the next submission reclaims it.
            now[0] = 61.0
            session.result(session.submit(request))
            with pytest.raises(BrokerError, match="unknown job"):
                session.poll(abandoned)
            assert session.metrics()["jobs_evicted"]["ttl"] >= 1

    def test_ttl_evicts_retrieved_jobs_too(self, observed_broker, contract):
        request = three_tier_request(contract)
        with observed_broker.session(finished_job_ttl=10.0) as session:
            now = self._fake_clock(session)
            fetched = session.submit(request)
            session.result(fetched)
            now[0] = 11.0
            session.submit(request)
            with pytest.raises(BrokerError, match="unknown job"):
                session.poll(fetched)

    def test_pending_and_fresh_jobs_never_ttl_evicted(
        self, observed_broker, contract
    ):
        request = three_tier_request(contract)
        with observed_broker.session(finished_job_ttl=1e-6) as session:
            # Jobs are evicted only on later submissions, and only once
            # finished — a just-submitted job is always pollable.
            job_id = session.submit(request)
            assert session.poll(job_id) in ("pending", "running", "done")
            report = session.result(job_id)
            assert report.recommendations

    def test_both_eviction_paths_counted_in_metrics(
        self, observed_broker, contract
    ):
        request = three_tier_request(contract)
        with observed_broker.session(
            max_finished_jobs=1, finished_job_ttl=60.0
        ) as session:
            now = self._fake_clock(session)
            evicted = session.metrics()["jobs_evicted"]
            assert evicted == {"retrieved": 0, "ttl": 0}
            # Count-based path: two retrieved jobs, cap of one.
            for _ in range(2):
                session.result(session.submit(request))
            session.result(session.submit(request))
            assert session.metrics()["jobs_evicted"]["retrieved"] >= 1
            # TTL path: abandon one, age it out.
            abandoned = session.submit(request)
            session.job(abandoned).done.wait(timeout=30.0)
            now[0] = 61.0
            session.result(session.submit(request))
            metrics = session.metrics()
            assert metrics["jobs_evicted"]["ttl"] >= 1
            assert set(metrics["jobs_evicted"]) == {"retrieved", "ttl"}

    def test_finished_job_ttl_validated(self, observed_broker):
        with pytest.raises(BrokerError, match="finished_job_ttl"):
            observed_broker.session(finished_job_ttl=0.0)


class TestEnvelopeFieldRoundTrip:
    """REP005's runtime twin: every wire type survives the round trip.

    The static rule checks the *key sets* of to_dict/from_dict agree
    with the dataclass fields; these tests check the *values* survive,
    field by field, for a representative instance of every envelope
    type the broker can put on the wire.
    """

    def _option(self, option_id=3):
        return OptionSummary(
            option_id=option_id,
            choice_names=("hypervisor-n+1", "raid-1", "dual-gateway"),
            clustered_components=("compute",),
            uptime_probability=0.9987,
            ha_cost=1234.56,
            expected_penalty=78.9,
            tco_total=1313.46,
            total_with_base=9313.46,
            meets_sla=True,
        )

    def _provider_report(self, engine_stats=None):
        return ProviderReport(
            provider_name="metalcloud",
            strategy="pruned",
            evaluations=14,
            pruned=2,
            space_size=16,
            best=self._option(3),
            min_penalty=self._option(5),
            engine_stats=engine_stats,
        )

    def _samples(self, contract):
        yield RecommendEnvelope(
            request=three_tier_request(contract), request_id="req-7"
        )
        yield self._option()
        yield self._provider_report(engine_stats={"combines": 12, "hits": 3})
        yield self._provider_report(engine_stats=None)
        yield ReportEnvelope(
            request_name="three-tier",
            providers=(self._provider_report(),),
            request_id="req-7",
        )
        yield ErrorEnvelope(
            status=422,
            error="validation-error",
            message="sla percent out of range",
            request_id="req-7",
        )
        for kind in EVENT_KINDS:
            yield ProgressEvent(
                kind=kind,
                request_id="req-7",
                provider="metalcloud",
                detail={"completed": 2, "total": 4},
            )
        yield ProgressEvent(kind="accepted")  # optional fields at defaults

    def test_every_envelope_round_trips_field_by_field(self, contract):
        for envelope in self._samples(contract):
            restored = type(envelope).from_dict(envelope.to_dict())
            for field_info in dataclasses.fields(envelope):
                assert getattr(restored, field_info.name) == getattr(
                    envelope, field_info.name
                ), f"{type(envelope).__name__}.{field_info.name}"
            assert restored == envelope

    def test_every_dataclass_field_is_a_wire_key(self, contract):
        for envelope in self._samples(contract):
            keys = set(envelope.to_dict())
            for field_info in dataclasses.fields(envelope):
                assert field_info.name in keys, (
                    f"{type(envelope).__name__}.{field_info.name} "
                    "missing from to_dict"
                )

    def test_progress_event_json_round_trip(self):
        event = ProgressEvent(
            kind="provider-completed",
            request_id="req-1",
            provider="steelcore",
            detail={"rank": 1},
        )
        assert ProgressEvent.from_json(event.to_json()) == event

    def test_progress_event_rejects_unknown_keys(self):
        payload = ProgressEvent(kind="accepted").to_dict()
        payload["surprise"] = True
        with pytest.raises(ValidationError, match="surprise"):
            ProgressEvent.from_dict(payload)

    def test_progress_event_requires_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            ProgressEvent.from_dict({"request_id": "req-1"})

    def test_progress_event_rejects_non_mapping_detail(self):
        with pytest.raises(ValidationError, match="detail"):
            ProgressEvent.from_dict({"kind": "accepted", "detail": [1, 2]})
