"""DR standby catalog entries and the broker portfolio view."""

from __future__ import annotations

import pytest

from repro.availability.cluster_math import cluster_up_probability
from repro.broker.portfolio import optimize_portfolio
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.catalog.dr import ColdStandby, WarmStandby
from repro.catalog.hypervisor import HypervisorHA
from repro.cloud.providers import all_providers
from repro.errors import BrokerError, CatalogError
from repro.sla.contract import Contract
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


@pytest.fixture
def compute_cluster():
    return ClusterSpec(
        "c", Layer.COMPUTE, NodeSpec("host", 0.004, 6.0, 400.0), total_nodes=2
    )


class TestDrStandbys:
    def test_cold_standby_shape(self, compute_cluster):
        applied = ColdStandby().apply(compute_cluster)
        assert applied.total_nodes == 3
        assert applied.standby_tolerance == 1
        assert applied.failover_minutes == 45.0

    def test_cold_cheaper_than_warm_cheaper_than_hot(self, compute_cluster):
        cold = ColdStandby().apply(compute_cluster)
        warm = WarmStandby().apply(compute_cluster)
        hot = HypervisorHA(standby_nodes=1).apply(compute_cluster)
        assert (
            cold.monthly_ha_infra_cost
            < warm.monthly_ha_infra_cost
            < hot.monthly_ha_infra_cost
        )

    def test_takeover_speed_ordering(self, compute_cluster):
        cold = ColdStandby().apply(compute_cluster)
        warm = WarmStandby().apply(compute_cluster)
        hot = HypervisorHA(standby_nodes=1).apply(compute_cluster)
        assert cold.failover_minutes > warm.failover_minutes > hot.failover_minutes

    def test_all_postures_improve_breakdown_availability(self, compute_cluster):
        base = cluster_up_probability(compute_cluster)
        for technology in (ColdStandby(), WarmStandby()):
            assert cluster_up_probability(technology.apply(compute_cluster)) > base

    def test_cost_factor_validation(self):
        with pytest.raises(CatalogError, match="standby_cost_factor"):
            ColdStandby(standby_cost_factor=1.5)

    def test_compute_only(self):
        storage = ClusterSpec(
            "st", Layer.STORAGE, NodeSpec("disk", 0.01, 4.0), total_nodes=1
        )
        with pytest.raises(CatalogError):
            WarmStandby().apply(storage)


class TestPortfolio:
    @pytest.fixture(scope="class")
    def broker(self):
        service = BrokerService(all_providers())
        service.observe_all(years=5.0, seed=83)
        return service

    @pytest.fixture(scope="class")
    def requests(self):
        return [
            three_tier_request(
                Contract.linear(98.0, 100.0), system_name="retailer"
            ),
            three_tier_request(
                Contract.linear(99.0, 400.0), system_name="bank",
                compute_nodes=4,
            ),
            three_tier_request(
                Contract.linear(95.0, 25.0), system_name="batch-shop"
            ),
        ]

    def test_one_outcome_per_customer(self, broker, requests):
        report = optimize_portfolio(broker, requests)
        assert [o.request_name for o in report.outcomes] == [
            "retailer", "bank", "batch-shop",
        ]

    def test_totals_aggregate(self, broker, requests):
        report = optimize_portfolio(broker, requests)
        assert report.total_recommended == pytest.approx(
            sum(o.recommended_tco for o in report.outcomes)
        )
        assert report.total_savings == pytest.approx(
            report.total_ad_hoc - report.total_recommended
        )

    def test_savings_non_negative_per_customer(self, broker, requests):
        # The recommendation is TCO-minimal, so it can never cost more
        # than the ad-hoc (most-clustered) posture.
        report = optimize_portfolio(broker, requests)
        for outcome in report.outcomes:
            assert outcome.monthly_savings >= -1e-9

    def test_strict_customer_saves_the_smallest_fraction(self, broker, requests):
        # The 99%/$400 customer genuinely needs heavy HA, so the ad-hoc
        # posture wastes the least on them; lenient customers save more.
        report = optimize_portfolio(broker, requests)
        fractions = {o.request_name: o.savings_fraction for o in report.outcomes}
        assert fractions["bank"] == min(fractions.values())
        assert fractions["retailer"] > fractions["bank"]
        assert fractions["batch-shop"] > fractions["bank"]

    def test_empty_portfolio_rejected(self, broker):
        with pytest.raises(BrokerError):
            optimize_portfolio(broker, [])

    def test_describe_has_total_line(self, broker, requests):
        text = optimize_portfolio(broker, requests).describe()
        assert "TOTAL:" in text
