"""Deployments and fault injection."""

from __future__ import annotations

import pytest

from repro.cloud.deployment import default_sku, deploy_system, hybrid_deploy
from repro.cloud.events import ResourceEventKind
from repro.cloud.faults import FaultInjector
from repro.cloud.provider import ResourceKind
from repro.cloud.providers import cumulus, metalcloud, stratus
from repro.errors import CloudError
from repro.topology.cluster import Layer
from repro.units import MINUTES_PER_YEAR


class TestDefaultSku:
    def test_middle_of_catalog(self):
        provider = metalcloud()
        assert default_sku(provider, Layer.COMPUTE) == "bm.medium"
        assert default_sku(provider, Layer.STORAGE) == "ssd.500"
        assert default_sku(provider, Layer.NETWORK) == "gw.10g"

    def test_other_layer_uses_compute_catalog(self):
        assert default_sku(metalcloud(), Layer.OTHER) == "bm.medium"


class TestDeploySystem:
    def test_one_resource_per_node(self, three_tier):
        provider = metalcloud()
        deployment = deploy_system(three_tier, provider)
        assert len(deployment.cluster_resources("compute")) == 3
        assert len(deployment.cluster_resources("storage")) == 1
        assert len(deployment.cluster_resources("network")) == 1

    def test_layers_map_to_resource_kinds(self, three_tier):
        deployment = deploy_system(three_tier, metalcloud())
        assert all(
            r.kind is ResourceKind.VM
            for r in deployment.cluster_resources("compute")
        )
        assert deployment.cluster_resources("storage")[0].kind is ResourceKind.VOLUME
        assert deployment.cluster_resources("network")[0].kind is ResourceKind.GATEWAY

    def test_monthly_cost_matches_provider_spend(self, three_tier):
        provider = metalcloud()
        deployment = deploy_system(three_tier, provider)
        assert deployment.monthly_infra_cost == pytest.approx(provider.monthly_spend())

    def test_teardown_deletes_everything(self, three_tier):
        provider = metalcloud()
        deployment = deploy_system(three_tier, provider)
        assert deployment.teardown() == 5
        assert provider.monthly_spend() == 0.0
        assert deployment.monthly_infra_cost == 0.0

    def test_resources_tagged_with_cluster(self, three_tier):
        deployment = deploy_system(three_tier, metalcloud())
        for resource in deployment.cluster_resources("compute"):
            assert resource.tags["cluster"] == "compute"

    def test_unknown_cluster_lookup(self, three_tier):
        deployment = deploy_system(three_tier, metalcloud())
        with pytest.raises(CloudError):
            deployment.cluster_resources("nope")


class TestHybridDeploy:
    def test_spreads_clusters_across_providers(self, three_tier):
        providers = {
            "compute": stratus(),
            "storage": metalcloud(),
            "network": cumulus(),
        }
        deployment = hybrid_deploy(three_tier, providers)
        assert deployment.provider_for("compute").name == "stratus"
        assert deployment.provider_for("storage").name == "metalcloud"
        assert deployment.provider_for("network").name == "cumulus"

    def test_missing_placement_rejected(self, three_tier):
        with pytest.raises(CloudError, match="missing"):
            hybrid_deploy(three_tier, {"compute": metalcloud()})

    def test_describe_names_providers(self, three_tier):
        providers = {
            "compute": stratus(),
            "storage": metalcloud(),
            "network": cumulus(),
        }
        text = hybrid_deploy(three_tier, providers).describe()
        assert "stratus" in text and "metalcloud" in text


class TestFaultInjector:
    @pytest.fixture
    def deployment(self, three_tier):
        return deploy_system(three_tier, metalcloud())

    def test_deterministic_with_seed(self, deployment):
        a = FaultInjector(deployment.provider_for("compute"), seed=5).inject(
            deployment.all_resources(), horizon_minutes=MINUTES_PER_YEAR
        )
        b = FaultInjector(deployment.provider_for("compute"), seed=5).inject(
            deployment.all_resources(), horizon_minutes=MINUTES_PER_YEAR
        )
        assert a == b

    def test_events_sorted_by_time(self, deployment):
        events = FaultInjector(metalcloud(), seed=6).inject(
            deployment.all_resources(), horizon_minutes=MINUTES_PER_YEAR
        )
        times = [event.time_minutes for event in events]
        assert times == sorted(times)

    def test_failures_paired_with_repairs(self, deployment):
        events = FaultInjector(metalcloud(), seed=7).inject(
            deployment.all_resources(), horizon_minutes=5 * MINUTES_PER_YEAR
        )
        failures = sum(1 for e in events if e.kind is ResourceEventKind.FAILURE)
        repairs = sum(1 for e in events if e.kind is ResourceEventKind.REPAIR)
        assert failures == repairs > 0

    def test_ha_protected_emits_failovers(self, deployment):
        events = FaultInjector(metalcloud(), seed=8).inject(
            deployment.all_resources(), horizon_minutes=5 * MINUTES_PER_YEAR
        )
        failovers = [e for e in events if e.kind is ResourceEventKind.FAILOVER]
        assert failovers
        assert all(e.duration_minutes > 0 for e in failovers)

    def test_unprotected_fleet_has_no_failovers(self, deployment):
        events = FaultInjector(metalcloud(), seed=9).inject(
            deployment.all_resources(),
            horizon_minutes=5 * MINUTES_PER_YEAR,
            ha_protected=False,
        )
        assert not any(e.kind is ResourceEventKind.FAILOVER for e in events)

    def test_failure_rate_roughly_matches_ground_truth(self, deployment):
        # 3 VMs x 6 failures/yr x 10 yrs = ~180 VM failures expected.
        vms = [r for r in deployment.all_resources() if r.kind is ResourceKind.VM]
        events = FaultInjector(metalcloud(), seed=10).inject(
            vms, horizon_minutes=10 * MINUTES_PER_YEAR
        )
        failures = sum(1 for e in events if e.kind is ResourceEventKind.FAILURE)
        assert 120 <= failures <= 250

    def test_rejects_nonpositive_horizon(self, deployment):
        with pytest.raises(CloudError):
            FaultInjector(metalcloud(), seed=11).inject(
                deployment.all_resources(), horizon_minutes=0.0
            )
