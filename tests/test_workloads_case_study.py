"""The calibrated §III case study: every paper-stated outcome must hold.

These tests pin the reproduction to the claims in the paper's *text*
(the figures' dollar values are not available; see DESIGN.md §4).
"""

from __future__ import annotations

import pytest

from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import pruned_optimize
from repro.workloads import case_study
from repro.workloads.case_study import case_study_problem


@pytest.fixture(scope="module")
def result():
    return brute_force_optimize(case_study_problem())


class TestContractTerms:
    def test_sla_is_98_percent(self):
        assert case_study.case_study_contract().sla.target_percent == 98.0

    def test_penalty_is_100_per_hour(self):
        contract = case_study.case_study_contract()
        assert contract.penalty.monthly_penalty(1.0) == 100.0

    def test_labor_is_30_per_hour(self):
        assert case_study.case_study_labor_rate().dollars_per_hour == 30.0


class TestArchitectureShape:
    def test_three_serial_clusters(self):
        system = case_study.case_study_base_system()
        assert system.cluster_names == ("compute", "storage", "network")

    def test_compute_is_three_active_hosts(self):
        system = case_study.case_study_base_system()
        assert system.cluster("compute").total_nodes == 3

    def test_space_is_k2_n3(self, result):
        assert result.space_size == 8

    def test_compute_ha_is_three_plus_one(self, result):
        option4 = result.option(4)
        compute = option4.system.cluster("compute")
        assert compute.total_nodes == 4
        assert compute.standby_tolerance == 1
        assert compute.ha_technology == "hypervisor-n+1"

    def test_storage_ha_is_raid1(self, result):
        storage = result.option(3).system.cluster("storage")
        assert storage.ha_technology == "raid-1"
        assert storage.total_nodes == 2

    def test_network_ha_is_dual_gateway(self, result):
        network = result.option(2).system.cluster("network")
        assert network.ha_technology == "dual-gateway"
        assert network.total_nodes == 2


class TestPaperOutcomes:
    def test_recommendation_is_option_3_storage_only(self, result):
        assert result.best.option_id == case_study.EXPECTED_BEST_OPTION_ID
        assert result.best.clustered_components == ("storage",)

    def test_min_penalty_option_is_5(self, result):
        assert (
            result.min_penalty_option.option_id
            == case_study.EXPECTED_MIN_PENALTY_OPTION_ID
        )
        assert result.min_penalty_option.clustered_components == (
            "storage", "network",
        )

    def test_option_5_is_first_to_meet_sla(self, result):
        for option in result.options:
            if option.option_id < 5:
                assert not option.meets_sla, option.label
        assert result.option(5).meets_sla

    def test_savings_close_to_62_percent(self, result):
        savings = result.savings_vs(result.option(case_study.AS_IS_OPTION_ID))
        assert savings == pytest.approx(
            case_study.EXPECTED_SAVINGS_FRACTION,
            abs=case_study.SAVINGS_TOLERANCE,
        )

    def test_pruned_search_clips_exactly_option_8(self):
        pruned = pruned_optimize(case_study_problem())
        evaluated = {option.option_id for option in pruned.options}
        assert evaluated == {1, 2, 3, 4, 5, 6, 7}
        assert pruned.pruned == 1

    def test_option_1_has_no_ha_cost(self, result):
        option1 = result.option(1)
        assert option1.tco.ha_cost == 0.0
        assert option1.tco.expected_penalty > 0.0

    def test_option_8_has_no_penalty(self, result):
        option8 = result.option(8)
        assert option8.tco.expected_penalty == 0.0
        assert option8.meets_sla

    def test_option_ordering_matches_figures(self, result):
        """#2=network (Fig 5), #3=storage (Fig 6), #4=compute (Fig 7),
        #5=storage+network (Fig 8), #6=compute+network (Fig 9)."""
        expectations = {
            2: ("network",),
            3: ("storage",),
            4: ("compute",),
            5: ("storage", "network"),
            6: ("compute", "network"),
            7: ("compute", "storage"),
            8: ("compute", "storage", "network"),
        }
        for option_id, clustered in expectations.items():
            assert result.option(option_id).clustered_components == clustered

    def test_uptime_ordering_sanity(self, result):
        # All-HA must be the most available option; no-HA the least.
        uptimes = {
            option.option_id: option.tco.uptime_probability
            for option in result.options
        }
        assert max(uptimes, key=uptimes.get) == 8
        assert min(uptimes, key=uptimes.get) == 1
