"""OptimizationResult: recommendations, lookups, savings, Pareto frontier."""

from __future__ import annotations

import pytest

from repro.errors import OptimizerError
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pareto import dominates, pareto_frontier
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.result import OptimizationResult


class TestRecommendations:
    def test_min_penalty_option_has_lowest_penalty(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        min_pen = result.min_penalty_option
        assert min_pen.tco.expected_penalty == min(
            option.tco.expected_penalty for option in result.options
        )

    def test_min_penalty_ties_broken_by_cheapest_cha(self, paper_problem):
        # Options #5..#8 all carry zero penalty; #5 has the lowest C_HA.
        result = brute_force_optimize(paper_problem)
        assert result.min_penalty_option.option_id == 5

    def test_savings_vs_reference(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        savings = result.savings_vs(result.option(8))
        assert savings == pytest.approx(
            1 - result.best.tco.total / result.option(8).tco.total
        )

    def test_savings_vs_zero_cost_reference_rejected(self, paper_problem):
        # Under a no-penalty contract option #1 costs exactly $0, making
        # it an invalid savings baseline.
        from repro.optimizer.space import OptimizationProblem
        from repro.sla.contract import Contract

        free_problem = OptimizationProblem(
            base_system=paper_problem.base_system,
            registry=paper_problem.registry,
            contract=Contract.linear(98.0, 0.0),
            labor_rate=paper_problem.labor_rate,
        )
        result = brute_force_optimize(free_problem)
        free_option = result.option(1)
        assert free_option.tco.total == 0.0
        with pytest.raises(OptimizerError):
            result.savings_vs(free_option)

    def test_option_lookup_on_pruned_result_explains(self, paper_problem):
        pruned = pruned_optimize(paper_problem)
        with pytest.raises(OptimizerError, match="pruned"):
            pruned.option(8)

    def test_by_label_is_unique(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        labels = result.by_label()
        assert len(labels) == len(result.options)

    def test_empty_result_rejected(self):
        with pytest.raises(OptimizerError):
            OptimizationResult(
                options=(), evaluations=0, pruned=0, space_size=0, strategy="x"
            )

    def test_describe_mentions_both_recommendations(self, paper_problem):
        text = brute_force_optimize(paper_problem).describe()
        assert "min TCO" in text and "min penalty" in text


class TestPareto:
    def test_frontier_is_subset(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        frontier = pareto_frontier(result.options)
        ids = {option.option_id for option in result.options}
        assert all(option.option_id in ids for option in frontier)
        assert 0 < len(frontier) <= len(result.options)

    def test_frontier_sorted_by_cost(self, paper_problem):
        frontier = pareto_frontier(brute_force_optimize(paper_problem).options)
        costs = [option.tco.ha_cost for option in frontier]
        assert costs == sorted(costs)

    def test_frontier_uptime_strictly_increasing(self, paper_problem):
        frontier = pareto_frontier(brute_force_optimize(paper_problem).options)
        uptimes = [option.tco.uptime_probability for option in frontier]
        assert all(a < b for a, b in zip(uptimes, uptimes[1:]))

    def test_no_frontier_member_dominated(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        frontier = pareto_frontier(result.options)
        for member in frontier:
            assert not any(
                dominates(other, member)
                for other in result.options
                if other is not member
            )

    def test_dominated_options_excluded(self, paper_problem):
        # Option #4 (compute only) costs more than #3 and yields less
        # uptime than #5; it cannot be on the frontier.
        result = brute_force_optimize(paper_problem)
        frontier_ids = {option.option_id for option in pareto_frontier(result.options)}
        assert 4 not in frontier_ids

    def test_free_option_always_on_frontier(self, paper_problem):
        # Option #1 has C_HA = 0; nothing can dominate it on cost.
        result = brute_force_optimize(paper_problem)
        frontier_ids = {option.option_id for option in pareto_frontier(result.options)}
        assert 1 in frontier_ids

    def test_dominates_requires_strictness(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        option = result.option(3)
        assert not dominates(option, option)


class TestLazySystem:
    """EvaluatedOption.system is built on first access (ROADMAP item)."""

    def test_incremental_sweep_defers_topologies(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        assert all(
            not option.system_is_materialized for option in result.options
        )

    def test_labels_and_tables_do_not_force(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        result.describe()  # labels, costs, SLA marks
        assert all(
            not option.system_is_materialized for option in result.options
        )

    def test_access_materializes_once(self, paper_problem):
        result = brute_force_optimize(paper_problem)
        option = result.option(3)
        first = option.system
        assert option.system_is_materialized
        assert option.system is first

    def test_lazy_system_matches_direct_evaluation(self, paper_problem):
        from repro.optimizer.brute_force import evaluate_candidate
        from repro.optimizer.engine import EvaluationEngine

        engine = EvaluationEngine(paper_problem)
        space = engine.space
        for option_id, indices in enumerate(
            space.candidates_in_paper_order(), start=1
        ):
            lazy = engine.evaluate(option_id, indices)
            direct = evaluate_candidate(paper_problem, space, option_id, indices)
            assert lazy.system == direct.system
            assert lazy.tco.total == direct.tco.total

    def test_relabel_keeps_system_lazy(self, paper_problem):
        from repro.optimizer.engine import EvaluationEngine

        engine = EvaluationEngine(paper_problem)
        first = engine.evaluate(3, (0, 1, 0))
        relabelled = engine.evaluate(99, (0, 1, 0))
        assert relabelled.option_id == 99
        assert not relabelled.system_is_materialized
        assert relabelled.tco is first.tco

    def test_direct_mode_options_are_materialized(self, paper_problem):
        from repro.optimizer.engine import EvaluationEngine

        engine = EvaluationEngine(paper_problem, mode="direct")
        option = engine.evaluate(1, (0, 0, 0))
        assert option.system_is_materialized
