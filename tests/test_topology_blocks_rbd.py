"""Reliability block diagrams: structure and availability algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.breakdown import breakdown_downtime_probability
from repro.availability.cluster_math import cluster_up_probability
from repro.availability.rbd import (
    block_availability,
    block_downtime_probability,
    cluster_effective_availability,
    parallel_gain,
)
from repro.errors import TopologyError
from repro.topology.blocks import (
    ClusterBlock,
    ParallelBlock,
    SerialBlock,
    leaf,
    parallel,
    serial,
    system_to_block,
)
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.workloads.case_study import case_study_base_system


def make_cluster(name: str, p: float = 0.05, nodes: int = 1) -> ClusterSpec:
    return ClusterSpec(name, Layer.COMPUTE, NodeSpec("n", p, 4.0), total_nodes=nodes)


class TestBlockStructure:
    def test_leaf_iterates_its_cluster(self):
        cluster = make_cluster("a")
        assert list(leaf(cluster).iter_clusters()) == [cluster]

    def test_serial_preserves_order(self):
        block = serial(leaf(make_cluster("a")), leaf(make_cluster("b")))
        assert block.cluster_names() == ("a", "b")

    def test_nested_iteration_depth_first(self):
        block = serial(
            leaf(make_cluster("a")),
            parallel(leaf(make_cluster("b")), leaf(make_cluster("c"))),
        )
        assert block.cluster_names() == ("a", "b", "c")

    def test_serial_needs_children(self):
        with pytest.raises(TopologyError):
            SerialBlock(children=())

    def test_parallel_needs_two_children(self):
        with pytest.raises(TopologyError):
            ParallelBlock(children=(leaf(make_cluster("a")),))

    def test_duplicate_names_detected(self):
        block = serial(leaf(make_cluster("a")), leaf(make_cluster("a")))
        with pytest.raises(TopologyError, match="reuses"):
            block.validate_unique_names()

    def test_describe_renders_tree(self):
        block = serial(
            leaf(make_cluster("a")),
            parallel(leaf(make_cluster("b")), leaf(make_cluster("c"))),
        )
        text = block.describe()
        assert "serial:" in text and "parallel:" in text


class TestRbdAvailability:
    def test_leaf_matches_cluster_math(self):
        cluster = make_cluster("a", p=0.07, nodes=3)
        assert block_availability(
            leaf(cluster), include_failover=False
        ) == pytest.approx(cluster_up_probability(cluster))

    def test_serial_multiplies(self):
        a, b = make_cluster("a", 0.1), make_cluster("b", 0.2)
        block = serial(leaf(a), leaf(b))
        assert block_availability(block, include_failover=False) == pytest.approx(
            0.9 * 0.8
        )

    def test_parallel_survives_single_branch_loss(self):
        a, b = make_cluster("a", 0.1), make_cluster("b", 0.2)
        block = parallel(leaf(a), leaf(b))
        assert block_availability(block, include_failover=False) == pytest.approx(
            1 - 0.1 * 0.2
        )

    def test_chain_equals_paper_breakdown_model(self):
        system = case_study_base_system()
        block = system_to_block(system)
        assert block_availability(block, include_failover=False) == pytest.approx(
            1.0 - breakdown_downtime_probability(system), rel=1e-12
        )

    def test_downtime_is_complement(self):
        block = serial(leaf(make_cluster("a")), leaf(make_cluster("b")))
        assert block_availability(block) + block_downtime_probability(block) == (
            pytest.approx(1.0)
        )

    def test_effective_availability_debits_failover(self):
        cluster = ClusterSpec(
            "c", Layer.COMPUTE, NodeSpec("n", 0.01, 6.0), total_nodes=2,
            standby_tolerance=1, failover_minutes=10.0,
        )
        with_failover = cluster_effective_availability(cluster, True)
        without = cluster_effective_availability(cluster, False)
        assert with_failover < without

    def test_parallel_gain_zero_for_serial(self):
        block = serial(leaf(make_cluster("a")), leaf(make_cluster("b")))
        assert parallel_gain(block) == pytest.approx(0.0)

    def test_parallel_gain_positive_for_redundant_paths(self):
        block = parallel(leaf(make_cluster("a", 0.1)), leaf(make_cluster("b", 0.1)))
        assert parallel_gain(block) > 0.0

    def test_parallel_beats_each_branch(self):
        a, b = make_cluster("a", 0.15), make_cluster("b", 0.25)
        combined = block_availability(parallel(leaf(a), leaf(b)))
        assert combined > block_availability(leaf(a))
        assert combined > block_availability(leaf(b))

    def test_serial_worse_than_weakest_link(self):
        a, b = make_cluster("a", 0.15), make_cluster("b", 0.25)
        combined = block_availability(serial(leaf(a), leaf(b)))
        assert combined < block_availability(leaf(b))


class TestRbdProperties:
    p_values = st.floats(min_value=0.0, max_value=0.5)

    @given(pa=p_values, pb=p_values, pc=p_values)
    @settings(max_examples=100)
    def test_availability_always_probability(self, pa, pb, pc):
        block = serial(
            leaf(make_cluster("a", pa)),
            parallel(leaf(make_cluster("b", pb)), leaf(make_cluster("c", pc))),
        )
        value = block_availability(block)
        assert 0.0 <= value <= 1.0

    @given(pa=p_values, pb=p_values)
    @settings(max_examples=100)
    def test_parallel_never_worse_than_serial(self, pa, pb):
        a, b = make_cluster("a", pa), make_cluster("b", pb)
        assert block_availability(parallel(leaf(a), leaf(b))) >= (
            block_availability(serial(leaf(a), leaf(b))) - 1e-12
        )

    @given(pa=p_values, pb=p_values, pc=p_values)
    @settings(max_examples=100)
    def test_composition_associativity(self, pa, pb, pc):
        a, b, c = (
            make_cluster("a", pa),
            make_cluster("b", pb),
            make_cluster("c", pc),
        )
        flat = serial(leaf(a), leaf(b), leaf(c))
        nested = serial(serial(leaf(a), leaf(b)), leaf(c))
        assert block_availability(flat) == pytest.approx(
            block_availability(nested)
        )
