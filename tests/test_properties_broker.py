"""Property-based tests on broker telemetry invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.persistence import telemetry_from_dict, telemetry_to_dict
from repro.broker.telemetry import TelemetryStore
from repro.units import MINUTES_PER_YEAR

outage_minutes = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)
failover_minutes = st.floats(min_value=0.0, max_value=120.0, allow_nan=False)


@st.composite
def observation_batches(draw):
    """A plausible (exposure, outages, failovers) batch for one component."""
    node_count = draw(st.integers(min_value=1, max_value=50))
    years = draw(st.floats(min_value=0.5, max_value=20.0))
    outages = draw(st.lists(outage_minutes, min_size=0, max_size=30))
    failovers = draw(st.lists(failover_minutes, min_size=0, max_size=30))
    return node_count, years, outages, failovers


def _populate(store: TelemetryStore, batch, provider="p", kind="vm") -> None:
    node_count, years, outages, failovers = batch
    store.register_exposure(provider, kind, node_count, years * MINUTES_PER_YEAR)
    for duration in outages:
        store.record_failure(provider, kind)
        store.record_outage(provider, kind, duration)
    for duration in failovers:
        store.record_failover(provider, kind, duration)


class TestTelemetryProperties:
    @given(batch=observation_batches())
    @settings(max_examples=150)
    def test_down_probability_is_probability(self, batch):
        store = TelemetryStore()
        _populate(store, batch)
        assert 0.0 <= store.down_probability("p", "vm") <= 1.0

    @given(batch=observation_batches())
    @settings(max_examples=150)
    def test_failure_rate_non_negative(self, batch):
        store = TelemetryStore()
        _populate(store, batch)
        assert store.failures_per_year("p", "vm") >= 0.0

    @given(batch=observation_batches())
    @settings(max_examples=100)
    def test_more_exposure_never_raises_estimates(self, batch):
        """Registering extra clean exposure dilutes P-hat and f-hat."""
        store = TelemetryStore()
        _populate(store, batch)
        before_p = store.down_probability("p", "vm")
        before_f = store.failures_per_year("p", "vm")
        store.register_exposure("p", "vm", 10, MINUTES_PER_YEAR)
        assert store.down_probability("p", "vm") <= before_p + 1e-12
        assert store.failures_per_year("p", "vm") <= before_f + 1e-12

    @given(batch=observation_batches())
    @settings(max_examples=100)
    def test_snapshot_roundtrip_preserves_everything(self, batch):
        store = TelemetryStore()
        _populate(store, batch)
        restored = telemetry_from_dict(telemetry_to_dict(store))
        assert restored.down_probability("p", "vm") == store.down_probability("p", "vm")
        assert restored.failures_per_year("p", "vm") == store.failures_per_year("p", "vm")
        assert restored.failure_count("p", "vm") == store.failure_count("p", "vm")

    @given(batch=observation_batches())
    @settings(max_examples=100)
    def test_failover_mean_within_sample_range(self, batch):
        _node_count, _years, _outages, failovers = batch
        if not failovers:
            return
        store = TelemetryStore()
        _populate(store, batch)
        mean = store.failover_minutes("p", "vm")
        assert min(failovers) - 1e-9 <= mean <= max(failovers) + 1e-9

    @given(
        first=observation_batches(),
        second=observation_batches(),
    )
    @settings(max_examples=75)
    def test_ingest_order_irrelevant_for_estimates(self, first, second):
        """Telemetry is a sufficient-statistics accumulator: combining
        two observation batches gives the same estimates either way."""
        forward = TelemetryStore()
        _populate(forward, first)
        _populate(forward, second)
        backward = TelemetryStore()
        _populate(backward, second)
        _populate(backward, first)
        assert forward.down_probability("p", "vm") == pytest.approx(
            backward.down_probability("p", "vm")
        )
        assert forward.failures_per_year("p", "vm") == pytest.approx(
            backward.failures_per_year("p", "vm")
        )
