"""Cross-request megabatching: stacker semantics and broker integration."""

from __future__ import annotations

import threading

import pytest

from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.errors import OptimizerError
from repro.optimizer.engine import _import_numpy
from repro.optimizer.megabatch import (
    MegabatchConfig,
    MegabatchStacker,
    MegabatchStats,
)
from repro.sla.contract import Contract

requires_numpy = pytest.mark.skipif(
    _import_numpy() is None, reason="numpy not installed (the [vector] extra)"
)


def doubler(rows):
    return [row * 2 for row in rows]


class TestMegabatchConfig:
    def test_defaults(self):
        config = MegabatchConfig()
        assert config.window_seconds == 0.005
        assert config.max_rows == 65536

    def test_rejects_negative_window(self):
        with pytest.raises(OptimizerError, match="window_seconds"):
            MegabatchConfig(window_seconds=-0.1)

    def test_rejects_non_positive_max_rows(self):
        with pytest.raises(OptimizerError, match="max_rows"):
            MegabatchConfig(max_rows=0)


class TestMegabatchStats:
    def test_snapshot_is_detached_copy(self):
        stats = MegabatchStats(batches=1, spans=2, rows=30, max_spans_in_batch=2)
        copy = stats.snapshot()
        stats.batches = 9
        assert copy.batches == 1
        assert copy.to_dict() == {
            "batches": 1,
            "spans": 2,
            "rows": 30,
            "max_spans_in_batch": 2,
        }


class TestMegabatchStacker:
    def test_join_leave_refcount(self):
        stacker = MegabatchStacker()
        assert stacker.participants(7) == 0
        stacker.join(7)
        stacker.join(7)
        assert stacker.participants(7) == 2
        stacker.leave(7)
        assert stacker.participants(7) == 1
        stacker.leave(7)
        assert stacker.participants(7) == 0

    def test_empty_rows_short_circuit(self):
        stacker = MegabatchStacker()
        assert stacker.evaluate(1, doubler, []) == []
        assert stacker.stats.batches == 0

    def test_solo_caller_flushes_immediately(self):
        # No registered participants -> expected max(0, 1) == 1, so a
        # lone span satisfies the flush trigger without waiting out even
        # a very long window.
        stacker = MegabatchStacker(MegabatchConfig(window_seconds=60.0))
        assert stacker.evaluate(1, doubler, [3, 4]) == [6, 8]
        assert stacker.stats.to_dict() == {
            "batches": 1,
            "spans": 1,
            "rows": 2,
            "max_spans_in_batch": 1,
        }

    def test_two_threads_share_one_batch(self):
        stacker = MegabatchStacker(MegabatchConfig(window_seconds=30.0))
        uid = 42
        stacker.join(uid)
        stacker.join(uid)
        calls = []

        def spy(rows):
            calls.append(list(rows))
            return doubler(rows)

        results = {}

        def run(name, rows):
            results[name] = stacker.evaluate(uid, spy, rows)

        a = threading.Thread(target=run, args=("a", [1, 2, 3]))
        b = threading.Thread(target=run, args=("b", [10, 20]))
        a.start()
        b.start()
        a.join(timeout=20.0)
        b.join(timeout=20.0)
        assert not a.is_alive() and not b.is_alive()

        # One stacked evaluation containing both spans, results spliced
        # back per caller in submission order.
        assert len(calls) == 1
        assert sorted(calls[0]) == [1, 2, 3, 10, 20]
        assert results["a"] == [2, 4, 6]
        assert results["b"] == [20, 40]
        assert stacker.stats.to_dict() == {
            "batches": 1,
            "spans": 2,
            "rows": 5,
            "max_spans_in_batch": 2,
        }

    def test_window_expiry_flushes_without_stragglers(self):
        # Two registered participants but only one ever contributes: the
        # leader must flush at the window deadline, not hang.
        stacker = MegabatchStacker(MegabatchConfig(window_seconds=0.01))
        stacker.join(5)
        stacker.join(5)
        assert stacker.evaluate(5, doubler, [1]) == [2]
        assert stacker.stats.batches == 1

    def test_max_rows_triggers_flush(self):
        # Soft row bound: once the stacked rows reach max_rows the leader
        # flushes even though the second participant never shows up.
        stacker = MegabatchStacker(
            MegabatchConfig(window_seconds=30.0, max_rows=3)
        )
        stacker.join(5)
        stacker.join(5)
        assert stacker.evaluate(5, doubler, [1, 2, 3, 4]) == [2, 4, 6, 8]
        assert stacker.stats.rows == 4

    def test_evaluator_error_propagates_to_all_callers(self):
        stacker = MegabatchStacker(MegabatchConfig(window_seconds=30.0))
        uid = 9
        stacker.join(uid)
        stacker.join(uid)
        boom = ValueError("bad batch")

        def failing(rows):
            raise boom

        raised = {}

        def run(name):
            try:
                stacker.evaluate(uid, failing, [name])
            except ValueError as exc:
                raised[name] = exc

        a = threading.Thread(target=run, args=("a",))
        b = threading.Thread(target=run, args=("b",))
        a.start()
        b.start()
        a.join(timeout=20.0)
        b.join(timeout=20.0)
        assert not a.is_alive() and not b.is_alive()
        # Leader and follower both observe the same exception instance.
        assert raised["a"] is boom
        assert raised["b"] is boom
        assert stacker.stats.batches == 0

    def test_wrong_length_evaluator_rejected(self):
        stacker = MegabatchStacker()
        with pytest.raises(OptimizerError, match="payloads for"):
            stacker.evaluate(1, lambda rows: rows[:-1], [1, 2])

    def test_observer_sees_span_counts(self):
        observed = []
        stacker = MegabatchStacker(observer=observed.append)
        stacker.evaluate(1, doubler, [1])
        stacker.evaluate(1, doubler, [2, 3])
        assert observed == [1, 1]

    def test_batches_are_per_uid(self):
        stacker = MegabatchStacker(MegabatchConfig(window_seconds=30.0))
        # Engine 1 has a registered straggler; engine 2 does not.  A solo
        # call against engine 2 must not be blocked by engine 1's state.
        stacker.join(1)
        stacker.join(1)
        assert stacker.evaluate(2, doubler, [5]) == [10]
        assert stacker.stats.batches == 1


@requires_numpy
class TestBrokerMegabatchIntegration:
    """Concurrent megabatched sessions return byte-identical reports."""

    @pytest.fixture(scope="class")
    def broker(self) -> BrokerService:
        broker = BrokerService(all_providers())
        broker.observe_all(years=1.0, seed=23)
        return broker

    def _requests(self):
        # brute-force streams candidates through the backend in blocks —
        # the path the stacker hooks; pruned/branch-and-bound evaluate
        # one candidate at a time and never reach the vector kernel.
        contracts = (
            Contract.linear(98.0, 100.0),
            Contract.linear(99.0, 250.0),
            Contract.linear(98.0, 100.0),  # same engine as the first
        )
        return [
            three_tier_request(contract, backend="vector",
                               strategy="brute-force")
            for contract in contracts
        ]

    def test_concurrent_reports_match_plain_session(self, broker):
        requests = self._requests()
        with broker.session() as plain:
            baseline = [plain.recommend(request) for request in requests]

        with broker.session(
            megabatch=MegabatchConfig(window_seconds=0.05)
        ) as stacked:
            reports = [None] * len(requests)

            def run(i):
                reports[i] = stacked.recommend(requests[i])

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(len(requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert all(not thread.is_alive() for thread in threads)
            metrics = stacked.metrics()

        for expected, actual in zip(baseline, reports):
            assert actual is not None
            for lhs, rhs in zip(expected.recommendations, actual.recommendations):
                assert lhs.provider_name == rhs.provider_name
                assert lhs.result.best.label == rhs.result.best.label
                assert (
                    lhs.result.best.tco.total_with_base
                    == rhs.result.best.tco.total_with_base
                )
                assert lhs.result.options == rhs.result.options

        stats = metrics["megabatch"]
        assert stats is not None
        assert stats["spans"] >= 1
        assert stats["rows"] >= 1

    def test_plain_session_reports_no_megabatch_metrics(self, broker):
        with broker.session() as plain:
            assert plain.metrics()["megabatch"] is None

    def test_megabatch_requires_vector_backend_to_engage(self, broker):
        # A serial-backend request through a megabatch session must take
        # the exclusive path and still produce the serial result.
        request = three_tier_request(Contract.linear(98.0, 100.0))
        with broker.session(megabatch=True) as stacked:
            report = stacked.recommend(request)
        with broker.session() as plain:
            baseline = plain.recommend(request)
        assert (
            report.best.result.best.tco.total_with_base
            == baseline.best.result.best.tco.total_with_base
        )
        assert report.best.result.options == baseline.best.result.options
