"""System-level B_s (Eq. 2) and F_s (Eq. 3)."""

from __future__ import annotations

import pytest

from repro.availability.breakdown import (
    breakdown_downtime_probability,
    cluster_breakdown_contributions,
)
from repro.availability.failover import (
    cluster_failover_downtime,
    cluster_yearly_failover_minutes,
    failover_downtime_probability,
    others_quiet_probability,
)
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.units import MINUTES_PER_YEAR


def single_cluster_system(p: float, nodes: int = 1, tolerance: int = 0,
                          failover: float = 0.0, failures: float = 4.0):
    node = NodeSpec("n", p, failures)
    return (
        TopologyBuilder("s")
        .compute(
            "c", node, nodes=nodes, standby_tolerance=tolerance,
            failover_minutes=failover,
        )
        .build()
    )


class TestBreakdown:
    def test_single_bare_node(self):
        system = single_cluster_system(0.05)
        assert breakdown_downtime_probability(system) == pytest.approx(0.05)

    def test_serial_chain_multiplies(self):
        node_a = NodeSpec("a", 0.1, 4.0)
        node_b = NodeSpec("b", 0.2, 4.0)
        system = (
            TopologyBuilder("s")
            .compute("ca", node_a, nodes=1)
            .storage("cb", node_b, nodes=1)
            .build()
        )
        # B_s = 1 - 0.9 * 0.8
        assert breakdown_downtime_probability(system) == pytest.approx(1 - 0.72)

    def test_redundancy_lowers_breakdown(self):
        bare = single_cluster_system(0.05, nodes=1)
        mirrored = single_cluster_system(0.05, nodes=2, tolerance=1, failover=1.0)
        assert breakdown_downtime_probability(mirrored) < breakdown_downtime_probability(bare)

    def test_perfect_nodes_never_break(self):
        system = single_cluster_system(0.0)
        assert breakdown_downtime_probability(system) == 0.0

    def test_contributions_keyed_by_cluster(self):
        node = NodeSpec("n", 0.1, 4.0)
        system = (
            TopologyBuilder("s")
            .compute("ca", node, nodes=1)
            .storage("cb", node, nodes=1)
            .build()
        )
        contributions = cluster_breakdown_contributions(system)
        assert set(contributions) == {"ca", "cb"}
        assert contributions["ca"] == pytest.approx(0.1)


class TestFailover:
    def test_no_ha_contributes_nothing(self):
        system = single_cluster_system(0.05, nodes=3)
        assert failover_downtime_probability(system) == 0.0

    def test_single_ha_cluster_formula(self):
        # K=2, K-hat=1, f=4/yr, t=10m: F_s = 4*10*1/delta (no other clusters).
        system = single_cluster_system(
            0.01, nodes=2, tolerance=1, failover=10.0, failures=4.0
        )
        assert failover_downtime_probability(system) == pytest.approx(
            4.0 * 10.0 * 1.0 / MINUTES_PER_YEAR
        )

    def test_yearly_failover_minutes(self):
        system = single_cluster_system(
            0.01, nodes=4, tolerance=1, failover=10.0, failures=6.0
        )
        cluster = system.cluster("c")
        # f * t * (K - K-hat) = 6 * 10 * 3
        assert cluster_yearly_failover_minutes(cluster) == pytest.approx(180.0)

    def test_others_quiet_probability_excludes_self(self):
        node = NodeSpec("n", 0.1, 4.0)
        system = (
            TopologyBuilder("s")
            .compute("ca", node, nodes=1)
            .storage("cb", node, nodes=1)
            .network("cc", node, nodes=1)
            .build()
        )
        # For ca: product over cb, cc of (1-P)^(K-K-hat) = 0.9 * 0.9
        assert others_quiet_probability(system, "ca") == pytest.approx(0.81)

    def test_eq3_weighting_applied(self):
        # Two clusters: one with HA and failovers, one bare and flaky.
        ha_node = NodeSpec("ha", 0.01, 4.0)
        flaky = NodeSpec("fl", 0.2, 4.0)
        system = (
            TopologyBuilder("s")
            .compute(
                "c", ha_node, nodes=2, standby_tolerance=1, failover_minutes=10.0
            )
            .storage("st", flaky, nodes=1)
            .build()
        )
        raw = 4.0 * 10.0 * 1.0 / MINUTES_PER_YEAR
        assert cluster_failover_downtime(system, "c") == pytest.approx(raw * 0.8)

    def test_fs_sums_over_clusters(self):
        node = NodeSpec("n", 0.01, 4.0)
        system = (
            TopologyBuilder("s")
            .compute("a", node, nodes=2, standby_tolerance=1, failover_minutes=5.0)
            .storage("b", node, nodes=2, standby_tolerance=1, failover_minutes=3.0)
            .build()
        )
        total = failover_downtime_probability(system)
        parts = (
            cluster_failover_downtime(system, "a")
            + cluster_failover_downtime(system, "b")
        )
        assert total == pytest.approx(parts)
