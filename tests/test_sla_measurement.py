"""Realized SLA compliance vs Eq. 5's expectation."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sla.contract import Contract
from repro.sla.measurement import (
    MONTH_MINUTES,
    ComplianceReport,
    MonthlySettlement,
    _bin_downtime_by_month,
    measure_compliance,
)
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.workloads.case_study import case_study_base_system


class TestBinning:
    def test_single_span_in_one_month(self):
        minutes = _bin_downtime_by_month([(10.0, 70.0, "breakdown")], 12 * MONTH_MINUTES)
        assert minutes[0] == pytest.approx(60.0)
        assert sum(minutes[1:]) == 0.0

    def test_span_straddling_months(self):
        boundary = MONTH_MINUTES
        spans = [(boundary - 30.0, boundary + 90.0, "breakdown")]
        minutes = _bin_downtime_by_month(spans, 12 * MONTH_MINUTES)
        assert minutes[0] == pytest.approx(30.0)
        assert minutes[1] == pytest.approx(90.0)

    def test_total_preserved(self):
        spans = [
            (0.0, 100.0, "breakdown"),
            (MONTH_MINUTES * 2.5, MONTH_MINUTES * 2.5 + 400.0, "failover"),
            (MONTH_MINUTES * 5 - 50.0, MONTH_MINUTES * 5 + 50.0, "breakdown"),
        ]
        minutes = _bin_downtime_by_month(spans, 12 * MONTH_MINUTES)
        assert sum(minutes) == pytest.approx(600.0)

    def test_rejects_sub_month_horizon(self):
        with pytest.raises(ValidationError):
            _bin_downtime_by_month([], MONTH_MINUTES / 2)


class TestSettlement:
    def test_monthly_settlement_flags_breach(self):
        month = MonthlySettlement(0, 1000.0, 2.0, 200.0)
        assert month.slipped
        assert not MonthlySettlement(1, 10.0, 0.0, 0.0).slipped

    def test_report_requires_months(self):
        with pytest.raises(ValidationError):
            ComplianceReport(
                system_name="s",
                contract=Contract.linear(98.0, 100.0),
                months=(),
                expected_monthly_penalty=0.0,
            )


class TestMeasureCompliance:
    def test_month_count_matches_years(self):
        report = measure_compliance(
            case_study_base_system(), Contract.linear(98.0, 100.0),
            years=3.0, seed=1,
        )
        assert len(report.months) == 36

    def test_deterministic_by_seed(self):
        args = (case_study_base_system(), Contract.linear(98.0, 100.0))
        a = measure_compliance(*args, years=2.0, seed=7)
        b = measure_compliance(*args, years=2.0, seed=7)
        assert a.mean_realized_penalty == b.mean_realized_penalty

    def test_perfect_system_never_pays(self):
        node = NodeSpec("n", 0.0, 0.0)
        system = TopologyBuilder("perfect").compute("c", node, nodes=2).build()
        report = measure_compliance(
            system, Contract.linear(99.999, 1000.0), years=2.0, seed=2
        )
        assert report.mean_realized_penalty == 0.0
        assert report.breach_fraction == 0.0
        assert report.expected_monthly_penalty == 0.0

    def test_jensen_gap_positive_for_borderline_system(self):
        """The case-study bare system straddles the 98% allowance, so
        realized penalties exceed Eq. 5's expectation."""
        report = measure_compliance(
            case_study_base_system(), Contract.linear(98.0, 100.0),
            years=20.0, seed=3,
        )
        assert report.jensen_gap > 0.0

    def test_realized_at_least_expectation_lower_bound(self):
        """E[max(0, X - a)] >= max(0, E[X] - a) up to sampling noise —
        allow a small tolerance on the Monte Carlo side."""
        report = measure_compliance(
            case_study_base_system(), Contract.linear(98.0, 100.0),
            years=30.0, seed=4,
        )
        assert report.mean_realized_penalty >= (
            report.expected_monthly_penalty * 0.8
        )

    def test_rejects_nonpositive_years(self):
        with pytest.raises(ValidationError):
            measure_compliance(
                case_study_base_system(), Contract.linear(98.0, 100.0),
                years=0.0,
            )

    def test_describe_reports_gap(self):
        report = measure_compliance(
            case_study_base_system(), Contract.linear(98.0, 100.0),
            years=2.0, seed=5,
        )
        assert "Jensen gap" in report.describe()
